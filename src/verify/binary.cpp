#include "verify/binary.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "isa/encoding.h"
#include "isa/instruction.h"
#include "isa/opcodes.h"
#include "isa/registers.h"
#include "support/strings.h"

namespace roload::verify {
namespace {

using asmtool::LinkImage;
using asmtool::Section;
using isa::Instruction;
using isa::Opcode;

constexpr std::uint64_t kPageSize = 4096;

// ---------------------------------------------------------------------------
// Abstract values.

struct AbsVal {
  enum class Kind : std::uint8_t { kBottom, kConst, kRoLoaded, kUnknown };
  Kind kind = Kind::kBottom;
  std::uint64_t bits = 0;  // kConst: value; kRoLoaded: page key

  static AbsVal Bottom() { return {}; }
  static AbsVal Const(std::uint64_t v) { return {Kind::kConst, v}; }
  static AbsVal RoLoaded(std::uint32_t key) { return {Kind::kRoLoaded, key}; }
  static AbsVal Unknown() { return {Kind::kUnknown, 0}; }

  bool operator==(const AbsVal&) const = default;
};

AbsVal Join(const AbsVal& a, const AbsVal& b) {
  if (a == b) return a;
  if (a.kind == AbsVal::Kind::kBottom) return b;
  if (b.kind == AbsVal::Kind::kBottom) return a;
  return AbsVal::Unknown();
}

// Machine state at one program point: the 32 integer registers, the
// stack-pointer displacement from function entry, and the abstract
// contents of sp-relative 8-byte slots (keyed by entry-relative offset).
struct State {
  AbsVal regs[32];
  bool reached = false;
  bool sp_valid = true;
  std::int64_t sp_off = 0;  // sp == entry_sp + sp_off
  std::map<std::int64_t, AbsVal> slots;
};

void DropSlots(State* s) { s->slots.clear(); }

void InvalidateSp(State* s) {
  s->sp_valid = false;
  s->slots.clear();
}

// Returns true when `into` changed.
bool Merge(State* into, const State& from) {
  if (!into->reached) {
    *into = from;
    into->reached = true;
    return true;
  }
  bool changed = false;
  for (int r = 0; r < 32; ++r) {
    AbsVal j = Join(into->regs[r], from.regs[r]);
    if (!(j == into->regs[r])) {
      into->regs[r] = j;
      changed = true;
    }
  }
  if (into->sp_valid &&
      (!from.sp_valid || from.sp_off != into->sp_off)) {
    InvalidateSp(into);
    changed = true;
  }
  if (into->sp_valid) {
    for (auto it = into->slots.begin(); it != into->slots.end();) {
      auto other = from.slots.find(it->first);
      AbsVal j = other == from.slots.end()
                     ? AbsVal::Unknown()
                     : Join(it->second, other->second);
      if (j.kind == AbsVal::Kind::kUnknown) {
        it = into->slots.erase(it);
        changed = true;
      } else {
        if (!(j == it->second)) {
          it->second = j;
          changed = true;
        }
        ++it;
      }
    }
  }
  return changed;
}

// ---------------------------------------------------------------------------
// Image geometry helpers.

const Section* SectionContaining(const LinkImage& image, std::uint64_t addr,
                                 std::uint64_t size) {
  for (const Section& sec : image.sections) {
    if (addr >= sec.vaddr && addr + size <= sec.vaddr + sec.size) return &sec;
  }
  return nullptr;
}

bool IsKeyedRo(const Section& sec) {
  return sec.key != 0 && sec.perms.read && !sec.perms.write &&
         !sec.perms.exec;
}

// A function carved out of an executable section's symbol table.
struct FuncSpan {
  std::string name;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
};

std::vector<FuncSpan> CarveFunctions(const LinkImage& image) {
  std::vector<FuncSpan> funcs;
  for (const Section& sec : image.sections) {
    if (!sec.perms.exec) continue;
    // Function symbols: inside this section, not block-local (.L_*).
    std::vector<std::pair<std::uint64_t, std::string>> syms;
    for (const auto& [name, addr] : image.symbols) {
      if (addr < sec.vaddr || addr >= sec.vaddr + sec.size) continue;
      if (name.rfind(".L", 0) == 0) continue;
      syms.emplace_back(addr, name);
    }
    std::sort(syms.begin(), syms.end());
    const std::uint64_t code_end = sec.vaddr + sec.bytes.size();
    for (std::size_t i = 0; i < syms.size(); ++i) {
      std::uint64_t end =
          i + 1 < syms.size() ? syms[i + 1].first : code_end;
      if (syms[i].first >= end) continue;  // aliased symbol, zero-size
      funcs.push_back(FuncSpan{syms[i].second, syms[i].first, end});
    }
  }
  return funcs;
}

// Linearly decoded function body.
struct DecodedFunc {
  FuncSpan span;
  std::vector<std::uint64_t> pcs;
  std::vector<Instruction> insts;
  std::map<std::uint64_t, std::size_t> index_of;  // pc -> insts index
};

DecodedFunc DecodeFunc(const Section& sec, const FuncSpan& span) {
  DecodedFunc fn;
  fn.span = span;
  std::uint64_t pc = span.start;
  while (pc + 2 <= span.end) {
    const std::uint64_t off = pc - sec.vaddr;
    std::uint32_t raw = 0;
    const std::uint64_t avail =
        std::min<std::uint64_t>(4, sec.bytes.size() - off);
    std::memcpy(&raw, sec.bytes.data() + off, avail);
    std::uint16_t low16 = static_cast<std::uint16_t>(raw);
    const unsigned len = isa::ParcelLength(low16);
    if (pc + len > span.end) break;
    std::optional<Instruction> inst = isa::Decode(raw);
    if (!inst.has_value()) break;  // alignment padding / data tail
    fn.index_of[pc] = fn.insts.size();
    fn.pcs.push_back(pc);
    fn.insts.push_back(*inst);
    pc += inst->length;
  }
  return fn;
}

const Section* ExecSectionFor(const LinkImage& image, const FuncSpan& span) {
  for (const Section& sec : image.sections) {
    if (sec.perms.exec && span.start >= sec.vaddr &&
        span.start < sec.vaddr + sec.size) {
      return &sec;
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Transfer function.

constexpr std::uint8_t kSp = static_cast<std::uint8_t>(isa::Reg::kSp);
constexpr std::uint8_t kRa = static_cast<std::uint8_t>(isa::Reg::kRa);

bool IsCallerSaved(int r) {
  return r == 1 || (r >= 5 && r <= 7) || (r >= 10 && r <= 17) ||
         (r >= 28 && r <= 31);
}

void ClobberCall(State* s) {
  for (int r = 0; r < 32; ++r) {
    if (IsCallerSaved(r)) s->regs[r] = AbsVal::Unknown();
  }
  DropSlots(s);  // the callee may store anywhere
}

void SetReg(State* s, std::uint8_t rd, AbsVal v) {
  if (rd != 0) s->regs[rd] = v;
}

// Is `jalr` a plain return? (The assembler's `ret` pseudo.)
bool IsRet(const Instruction& inst) {
  return inst.op == Opcode::kJalr && inst.rd == 0 && inst.rs1 == kRa &&
         inst.imm == 0;
}

struct Successors {
  std::uint64_t pcs[2];
  int count = 0;
  void Add(std::uint64_t pc) { pcs[count++] = pc; }
};

// Applies `inst` at `pc` to `s`; returns the intra-function successors.
Successors Step(const DecodedFunc& fn, std::uint64_t pc,
                const Instruction& inst, State* s) {
  Successors succ;
  const std::uint64_t next = pc + inst.length;
  auto in_func = [&fn](std::uint64_t target) {
    return fn.index_of.count(target) != 0;
  };

  switch (inst.op) {
    case Opcode::kLui:
      SetReg(s, inst.rd,
             AbsVal::Const(static_cast<std::uint64_t>(inst.imm) << 12));
      succ.Add(next);
      return succ;
    case Opcode::kAuipc:
      SetReg(s, inst.rd,
             AbsVal::Const(pc + (static_cast<std::uint64_t>(inst.imm) << 12)));
      succ.Add(next);
      return succ;
    case Opcode::kAddi: {
      if (inst.rd == kSp) {
        if (inst.rs1 == kSp && s->sp_valid) {
          s->sp_off += inst.imm;
        } else {
          InvalidateSp(s);
        }
        succ.Add(next);
        return succ;
      }
      const AbsVal src = s->regs[inst.rs1];
      if (src.kind == AbsVal::Kind::kConst) {
        SetReg(s, inst.rd, AbsVal::Const(src.bits + inst.imm));
      } else if (inst.imm == 0) {
        SetReg(s, inst.rd, src);  // mv preserves provenance
      } else {
        SetReg(s, inst.rd, AbsVal::Unknown());
      }
      succ.Add(next);
      return succ;
    }
    case Opcode::kAddiw: {
      const AbsVal src = s->regs[inst.rs1];
      if (inst.rd == kSp) {
        InvalidateSp(s);
      } else if (src.kind == AbsVal::Kind::kConst) {
        SetReg(s, inst.rd,
               AbsVal::Const(static_cast<std::uint64_t>(
                   static_cast<std::int32_t>(src.bits + inst.imm))));
      } else {
        SetReg(s, inst.rd, AbsVal::Unknown());
      }
      succ.Add(next);
      return succ;
    }
    case Opcode::kJal:
      if (inst.rd == 0) {
        const std::uint64_t target = pc + inst.imm;
        if (in_func(target)) succ.Add(target);
        return succ;  // tail jump out of the function otherwise
      }
      SetReg(s, inst.rd, AbsVal::Unknown());
      ClobberCall(s);
      succ.Add(next);
      return succ;
    case Opcode::kJalr:
      if (IsRet(inst)) return succ;
      if (inst.rd != 0) {
        SetReg(s, inst.rd, AbsVal::Unknown());
        ClobberCall(s);
        succ.Add(next);
      }
      return succ;  // rd == x0: tail dispatch, no fallthrough
    case Opcode::kEcall:
      SetReg(s, static_cast<std::uint8_t>(isa::Reg::kA0), AbsVal::Unknown());
      succ.Add(next);
      return succ;
    case Opcode::kEbreak:
    case Opcode::kFence:
      succ.Add(next);
      return succ;
    default:
      break;
  }

  if (isa::IsBranch(inst.op)) {
    const std::uint64_t target = pc + inst.imm;
    if (in_func(target)) succ.Add(target);
    succ.Add(next);
    return succ;
  }
  if (isa::IsRoLoad(inst.op)) {
    if (inst.rd == kSp) InvalidateSp(s);
    SetReg(s, inst.rd, AbsVal::RoLoaded(inst.key));
    succ.Add(next);
    return succ;
  }
  if (isa::IsLoad(inst.op)) {
    AbsVal v = AbsVal::Unknown();
    if (inst.op == Opcode::kLd && inst.rs1 == kSp && s->sp_valid) {
      auto it = s->slots.find(s->sp_off + inst.imm);
      if (it != s->slots.end()) v = it->second;
    }
    if (inst.rd == kSp) {
      InvalidateSp(s);
    } else {
      SetReg(s, inst.rd, v);
    }
    succ.Add(next);
    return succ;
  }
  if (isa::IsStore(inst.op)) {
    if (inst.rs1 == kSp && s->sp_valid) {
      const std::int64_t lo = s->sp_off + inst.imm;
      if (inst.op == Opcode::kSd && lo % 8 == 0) {
        s->slots[lo] = s->regs[inst.rs2];
      } else {
        // Partial overwrite: forget any slot the store touches.
        const std::int64_t hi = lo + isa::MemAccessBytes(inst.op);
        for (std::int64_t slot = (lo / 8) * 8 - 8; slot < hi; slot += 8) {
          s->slots.erase(slot);
        }
      }
    } else {
      DropSlots(s);  // unknown base may alias the stack frame
    }
    succ.Add(next);
    return succ;
  }

  // Remaining ALU ops: result unknown (no proof flows through them).
  if (inst.rd == kSp) {
    InvalidateSp(s);
  } else {
    SetReg(s, inst.rd, AbsVal::Unknown());
  }
  succ.Add(next);
  return succ;
}

// ---------------------------------------------------------------------------
// Per-function analysis.

struct FuncAnalysis {
  std::vector<State> in;  // converged state *before* each instruction
};

FuncAnalysis Analyze(const DecodedFunc& fn) {
  FuncAnalysis a;
  a.in.resize(fn.insts.size());
  if (fn.insts.empty()) return a;

  State entry;
  for (int r = 0; r < 32; ++r) entry.regs[r] = AbsVal::Unknown();
  entry.regs[0] = AbsVal::Const(0);
  entry.reached = true;
  a.in[0] = entry;

  std::deque<std::size_t> worklist{0};
  std::vector<bool> queued(fn.insts.size(), false);
  queued[0] = true;
  while (!worklist.empty()) {
    const std::size_t idx = worklist.front();
    worklist.pop_front();
    queued[idx] = false;
    State out = a.in[idx];
    const Successors succ = Step(fn, fn.pcs[idx], fn.insts[idx], &out);
    out.regs[0] = AbsVal::Const(0);  // x0 is hardwired
    for (int i = 0; i < succ.count; ++i) {
      auto it = fn.index_of.find(succ.pcs[i]);
      if (it == fn.index_of.end()) continue;
      if (Merge(&a.in[it->second], out) && !queued[it->second]) {
        worklist.push_back(it->second);
        queued[it->second] = true;
      }
    }
  }
  return a;
}

// ---------------------------------------------------------------------------
// Rule checks.

// Rules 20 + 21 on the section table, and 21's alias sweep.
void CheckSections(const LinkImage& image, Report* report) {
  for (const Section& sec : image.sections) {
    ++report->stats().sections;
    if (sec.key != 0) ++report->stats().keyed_sections;
    const bool keyed_name = sec.name.rfind(".rodata.key.", 0) == 0;
    if (keyed_name) {
      const std::uint32_t named_key = static_cast<std::uint32_t>(
          std::strtoul(sec.name.c_str() + 12, nullptr, 10));
      if (named_key != sec.key) {
        report->Add(Rule::kBinSectionAttrs, sec.name,
                    StrFormat("section named for key %u but mapped with "
                              "key %u",
                              named_key, sec.key));
      }
    } else if (sec.key != 0) {
      report->Add(Rule::kBinSectionAttrs, sec.name,
                  StrFormat("key %u on a section outside the "
                            ".rodata.key.<K> namespace",
                            sec.key));
    }
    if (sec.key != 0 && (sec.perms.write || sec.perms.exec || !sec.perms.read)) {
      report->Add(Rule::kBinWritableKeyAlias, sec.name,
                  StrFormat("keyed section must be R-- but is %c%c%c",
                            sec.perms.read ? 'r' : '-',
                            sec.perms.write ? 'w' : '-',
                            sec.perms.exec ? 'x' : '-'));
    }
  }
  // No writable mapping may share a page with a keyed frame: the PTE key
  // is per page, so such overlap would make the "read-only" pages
  // attacker-writable.
  for (const Section& keyed : image.sections) {
    if (keyed.key == 0 || keyed.size == 0) continue;
    const std::uint64_t klo = keyed.vaddr / kPageSize;
    const std::uint64_t khi = (keyed.vaddr + keyed.size - 1) / kPageSize;
    for (const Section& w : image.sections) {
      if (&w == &keyed || !w.perms.write || w.size == 0) continue;
      const std::uint64_t wlo = w.vaddr / kPageSize;
      const std::uint64_t whi = (w.vaddr + w.size - 1) / kPageSize;
      if (wlo <= khi && klo <= whi) {
        report->Add(Rule::kBinWritableKeyAlias, keyed.name,
                    StrFormat("writable section %s shares pages "
                              "0x%llx..0x%llx with this keyed frame",
                              w.name.c_str(),
                              static_cast<unsigned long long>(
                                  std::max(klo, wlo) * kPageSize),
                              static_cast<unsigned long long>(
                                  (std::min(khi, whi) + 1) * kPageSize - 1)));
      }
    }
  }
}

// Rule 27: every keyed IR global must have landed in an R-- section
// carrying exactly its key.
void CheckKeyedSymbols(const LinkImage& image, const Expectations& exp,
                       Report* report) {
  for (const auto& [name, key] : exp.keyed_symbols) {
    auto it = image.symbols.find(name);
    if (it == image.symbols.end()) {
      report->Add(Rule::kBinSymbolMisplaced, name,
                  StrFormat("keyed global (key %u) missing from the "
                            "image symbol table",
                            key));
      continue;
    }
    const Section* sec = SectionContaining(image, it->second, 1);
    if (sec == nullptr || !IsKeyedRo(*sec) || sec->key != key) {
      report->Add(
          Rule::kBinSymbolMisplaced, name,
          StrFormat("expected key-%u read-only placement but symbol is "
                    "in %s (key %u)",
                    key, sec == nullptr ? "no section" : sec->name.c_str(),
                    sec == nullptr ? 0 : sec->key));
    }
  }
}

// Rule 28: classic-CFI functions must begin with the exact ID word.
void CheckCfiIds(const std::vector<DecodedFunc>& funcs,
                 const Expectations& exp, Report* report) {
  std::map<std::string, const DecodedFunc*> by_name;
  for (const DecodedFunc& fn : funcs) by_name[fn.span.name] = &fn;
  for (const auto& [name, id] : exp.cfi_ids) {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      report->Add(Rule::kBinMissingCfiId, name,
                  "CFI-checked function not found among decoded functions");
      continue;
    }
    const DecodedFunc& fn = *it->second;
    const Instruction* first =
        fn.insts.empty() ? nullptr : &fn.insts.front();
    if (first == nullptr || first->op != Opcode::kLui || first->rd != 0 ||
        (static_cast<std::uint32_t>(first->imm) & 0xFFFFF) != id) {
      report->AddAt(Rule::kBinMissingCfiId, name, fn.span.start,
                    StrFormat("entry must carry ID word `lui zero, 0x%x`",
                              id));
    }
  }
}

// Rule 26 helper: does the ld.ro at `idx` sit behind an addi offset
// fixup? Walks the mv (addi rd,rs,0) copy chain the compressed-roload
// staging introduces, then recognizes `addi b, b, imm` immediately
// feeding the base.
bool HasAddiFixup(const DecodedFunc& fn, std::size_t idx) {
  std::uint8_t base = fn.insts[idx].rs1;
  for (std::size_t j = idx; j-- > 0;) {
    const Instruction& inst = fn.insts[j];
    if (inst.op != Opcode::kAddi || inst.rd != base || inst.rd == 0) {
      return false;  // base defined by something else (e.g. ld from slot)
    }
    if (inst.imm == 0) {
      base = inst.rs1;  // mv: follow the copy
      continue;
    }
    return inst.rs1 == inst.rd;  // addi b, b, off — the folded offset
  }
  return false;
}

}  // namespace

void VerifyImage(const LinkImage& image, const BinaryPolicy& policy,
                 const Expectations* expectations, Report* report) {
  CheckSections(image, report);

  // Keys that actually map to a keyed read-only frame (for rule 22).
  std::set<std::uint32_t> mapped_keys;
  for (const Section& sec : image.sections) {
    if (IsKeyedRo(sec)) mapped_keys.insert(sec.key);
  }

  std::vector<DecodedFunc> funcs;
  for (const FuncSpan& span : CarveFunctions(image)) {
    const Section* sec = ExecSectionFor(image, span);
    if (sec == nullptr) continue;
    funcs.push_back(DecodeFunc(*sec, span));
  }

  std::uint64_t roload_count = 0;
  std::uint64_t fixup_count = 0;
  for (const DecodedFunc& fn : funcs) {
    ++report->stats().functions;
    report->stats().instructions += fn.insts.size();

    // Syntactic sweep: every decoded ld.ro, reachable or not, must name
    // a mapped key; count ld.ro and fixups for the manifest rules.
    for (std::size_t i = 0; i < fn.insts.size(); ++i) {
      const Instruction& inst = fn.insts[i];
      if (!isa::IsRoLoad(inst.op)) continue;
      ++roload_count;
      ++report->stats().roload_instructions;
      if (HasAddiFixup(fn, i)) ++fixup_count;
      if (mapped_keys.count(inst.key) == 0) {
        report->AddAt(Rule::kBinKeyUnmapped, fn.span.name, fn.pcs[i],
                      StrFormat("%s key %u names no keyed read-only "
                                "section; every execution would fault",
                                std::string(isa::OpcodeName(inst.op)).c_str(),
                                inst.key));
      }
    }

    // Semantic pass over the converged abstract states.
    const FuncAnalysis analysis = Analyze(fn);
    for (std::size_t i = 0; i < fn.insts.size(); ++i) {
      const State& in = analysis.in[i];
      if (!in.reached) continue;
      const Instruction& inst = fn.insts[i];

      if (isa::IsRoLoad(inst.op)) {
        // Rule 23: statically-resolvable target must land inside the
        // matching keyed frame.
        const AbsVal base = in.regs[inst.rs1];
        if (base.kind == AbsVal::Kind::kConst) {
          const Section* target = SectionContaining(
              image, base.bits, isa::MemAccessBytes(inst.op));
          if (target == nullptr || !IsKeyedRo(*target) ||
              target->key != inst.key) {
            report->AddAt(
                Rule::kBinStaticTargetMismatch, fn.span.name, fn.pcs[i],
                StrFormat("ld.ro key %u reads 0x%llx which is %s",
                          inst.key,
                          static_cast<unsigned long long>(base.bits),
                          target == nullptr
                              ? "unmapped"
                              : StrFormat("in %s (key %u, %s)",
                                          target->name.c_str(), target->key,
                                          target->perms.write ? "writable"
                                                              : "read-only")
                                    .c_str()));
          }
        }
        continue;
      }

      if (inst.op == Opcode::kJalr && !IsRet(inst)) {
        ++report->stats().dispatches;
        const AbsVal target = in.regs[inst.rs1];
        const bool proven =
            target.kind == AbsVal::Kind::kRoLoaded && inst.imm == 0;
        if (proven) {
          ++report->stats().proven_dispatches;
        } else if (policy.require_protected_dispatch) {
          report->AddAt(
              Rule::kBinUnprovenDispatch, fn.span.name, fn.pcs[i],
              StrFormat("dispatch target in %s is not an ld.ro result on "
                        "all paths (%s)",
                        std::string(isa::RegName(inst.rs1)).c_str(),
                        target.kind == AbsVal::Kind::kConst
                            ? "constant"
                            : inst.imm != 0 ? "nonzero jalr offset"
                                            : "unknown provenance"));
        }
      }
    }
  }

  if (expectations != nullptr) {
    if (roload_count != expectations->roload_loads) {
      report->Add(Rule::kBinRoloadCountMismatch, "",
                  StrFormat("image has %llu ld.ro-family instructions but "
                            "the hardened IR carries %llu roload-md loads",
                            static_cast<unsigned long long>(roload_count),
                            static_cast<unsigned long long>(
                                expectations->roload_loads)));
    }
    if (fixup_count != expectations->addi_fixups) {
      report->Add(Rule::kBinMissingFixup, "",
                  StrFormat("found %llu addi offset fixups feeding ld.ro "
                            "but the hardened IR folds %llu offsets",
                            static_cast<unsigned long long>(fixup_count),
                            static_cast<unsigned long long>(
                                expectations->addi_fixups)));
    }
    CheckKeyedSymbols(image, *expectations, report);
    CheckCfiIds(funcs, *expectations, report);
  }
}

}  // namespace roload::verify
