// Attack-injection harness (Section V-C2 and V-D). Models an adversary
// with an arbitrary-read/write primitive inside the victim process: the
// victim runs for a while, the harness corrupts memory through the
// debug port (which bypasses permissions, exactly like a memory-corruption
// bug), and the run continues. The outcome tells whether the defense
// blocked the attack, the attacker hijacked control flow, or the attacker
// merely diverted execution inside the allowlist (the residual
// pointee-reuse surface the paper's Remarks section describes).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/toolchain.h"

namespace roload::sec {

enum class AttackKind : std::uint8_t {
  // Overwrite the object's vptr with a pointer to a writable fake vtable
  // containing the address of attacker code (classic vtable injection).
  kVtableInjection,
  // Overwrite the vptr with the address of a *legitimate* vtable of a
  // different class hierarchy (COOP-style vtable reuse).
  kVtableReuseCrossHierarchy,
  // Overwrite a function-pointer slot with the raw address of attacker
  // code (forward-edge hijack).
  kFnPtrCorruptToEvil,
  // Overwrite a function-pointer slot with another legitimate target of
  // the same function type (pointee reuse; allowed by type-based CFI by
  // design — the paper's residual attack surface).
  kFnPtrReuseSameType,
};

std::string_view AttackKindName(AttackKind kind);

enum class AttackOutcome : std::uint8_t {
  kHijacked,  // attacker code executed (sentinel observed)
  kBlocked,   // process killed by the defense (fault or CFI abort)
  kDiverted,  // ran to completion, but computation was altered in-allowlist
  kNoEffect,  // ran to completion with the unattacked result
};

std::string_view AttackOutcomeName(AttackOutcome outcome);

struct AttackResult {
  AttackOutcome outcome = AttackOutcome::kNoEffect;
  bool roload_violation = false;  // blocked via the ROLoad page-fault path
  int signal = 0;
  std::int64_t exit_code = 0;

  // Forensics from the audit layer (src/audit), which RunAttack keeps
  // enabled on the attacked system. `has_autopsy` is true exactly when the
  // block came through the ROLoad fault path — CFI/VTint software aborts
  // exit cleanly and leave no autopsy.
  bool has_autopsy = false;
  std::uint64_t fault_pc = 0;
  std::uint64_t fault_va = 0;
  std::uint32_t inst_key = 0;   // static key of the faulting ld.ro
  std::uint32_t pte_key = 0;    // key of the page it hit
  bool page_mapped = false;
  bool page_writable = false;
  // One-line verdict for matrices and logs:
  //   "caught:key-mismatch@<symbol>"   ld.ro landed on the wrong allowlist
  //   "caught:writable-page@<symbol>"  ld.ro landed on attacker memory
  //   "caught:unmapped-page@<symbol>"
  //   "caught:cfi-abort"               software-check abort (exit 134)
  //   "caught:signal"                  killed by a non-ROLoad fault
  //   "missed:hijacked" / "diverted:in-allowlist" / "no-effect"
  std::string classification;

  // SMP attribution: the hart the outcome was observed on (for a blocked
  // attack, the hart whose keyed dispatch caught it — not necessarily the
  // hart count minus one, the scheduler decides who dispatches first after
  // the corruption lands), the machine width the attack ran at, and the
  // hart whose debug port performed the corruption.
  unsigned hart = 0;
  unsigned harts = 1;
  unsigned inject_hart = 0;

  // End-of-run counter snapshot of the attacked system (census totals,
  // per-key TLB checks, ...) for cross-run aggregation via
  // campaign::CounterMerger.
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

// The victim program: a loop of virtual dispatches (hierarchy A) and
// indirect callback calls, with a second hierarchy B (reuse target), a
// second same-type callback, and an attacker function `evil` that records
// a sentinel when executed.
ir::Module MakeVictimModule();

// Builds the victim with `defense`, runs it on `variant`, injects `kind`
// mid-execution, and classifies the outcome.
StatusOr<AttackResult> RunAttack(AttackKind kind, core::Defense defense,
                                 core::SystemVariant variant =
                                     core::SystemVariant::kFullRoload);

// The under-load variant: the victim serves on every hart of a
// `harts`-hart SMP machine (one shared address space, so every hart
// dispatches through the same object and function-pointer slot), and the
// corruption lands mid-run while the other harts are mid-dispatch. The
// result records which hart's keyed dispatch caught the attack. With
// harts == 1 this is exactly RunAttack — the single-hart machine is
// bit-identical to the legacy System.
//
// `inject_hart` picks whose debug port the arbitrary write goes through
// (must be < harts). The address space is shared, so the verdict, the
// catching hart and the autopsy must not depend on it — the parity test in
// tests/test_smp.cpp pins hart-0 vs hart-(N-1) injection equal.
StatusOr<AttackResult> RunAttackSmp(AttackKind kind, core::Defense defense,
                                    unsigned harts,
                                    core::SystemVariant variant =
                                        core::SystemVariant::kFullRoload,
                                    unsigned inject_hart = 0);

}  // namespace roload::sec
