#include "sec/attack.h"

#include "asmtool/image.h"
#include "audit/audit.h"
#include "ir/builder.h"
#include "smp/machine.h"

namespace roload::sec {
namespace {

constexpr std::int64_t kSentinel = 0xDEAD;
constexpr std::int64_t kSentinelOffset = 40;  // scratch slot used by evil
constexpr std::uint64_t kPauseInstructions = 50000;
constexpr std::uint64_t kVictimIterations = 4000;

}  // namespace

std::string_view AttackKindName(AttackKind kind) {
  switch (kind) {
    case AttackKind::kVtableInjection:
      return "vtable-injection";
    case AttackKind::kVtableReuseCrossHierarchy:
      return "vtable-reuse-cross-hierarchy";
    case AttackKind::kFnPtrCorruptToEvil:
      return "fnptr-corrupt-to-evil";
    case AttackKind::kFnPtrReuseSameType:
      return "fnptr-reuse-same-type";
  }
  return "?";
}

std::string_view AttackOutcomeName(AttackOutcome outcome) {
  switch (outcome) {
    case AttackOutcome::kHijacked:
      return "HIJACKED";
    case AttackOutcome::kBlocked:
      return "blocked";
    case AttackOutcome::kDiverted:
      return "diverted";
    case AttackOutcome::kNoEffect:
      return "no-effect";
  }
  return "?";
}

ir::Module MakeVictimModule() {
  ir::Module module;
  module.name = "victim";
  const int hier_a = module.InternClass("HierA");
  const int hier_b = module.InternClass("HierB");
  const int vcall_type = module.InternFnType("i64(ptr,i64)");
  const int cb_type = module.InternFnType("i64(i64)#cb");
  const int evil_type = module.InternFnType("i64(i64,i64,i64)#evil");

  // Victim object of hierarchy A.
  ir::Global object;
  object.name = "the_object";
  object.quads.push_back(ir::GlobalInit{0, "vt_A0"});
  object.quads.push_back(ir::GlobalInit{7, ""});
  module.globals.push_back(object);

  // Hierarchy A vtables (two classes) and hierarchy B (reuse target).
  for (const auto& [vt_name, method, hier] :
       {std::tuple{"vt_A0", "m_A0", hier_a}, {"vt_A1", "m_A1", hier_a},
        {"vt_B0", "m_B0", hier_b}}) {
    ir::Global vtable;
    vtable.name = vt_name;
    vtable.read_only = true;
    vtable.trait = ir::GlobalTrait::kVTable;
    vtable.trait_id = hier;
    vtable.quads.push_back(ir::GlobalInit{0, method});
    module.globals.push_back(vtable);
  }

  // Writable function-pointer slot and its initial target.
  ir::Global fslot;
  fslot.name = "fslot";
  fslot.quads.push_back(ir::GlobalInit{0, "cb_first"});
  module.globals.push_back(fslot);

  // Attacker-controlled writable buffer (the fake vtable) and scratch.
  ir::Global buffer;
  buffer.name = "attack_buffer";
  buffer.zero_bytes = 64;
  module.globals.push_back(buffer);
  ir::Global scratch;
  scratch.name = "scratch";
  scratch.zero_bytes = 64;
  module.globals.push_back(scratch);

  // Methods: distinct constants so diversion changes the checksum.
  for (const auto& [name, constant] :
       {std::pair{"m_A0", 11}, {"m_A1", 13}, {"m_B0", 17}}) {
    ir::FunctionBuilder b(&module, name, "i64(ptr,i64)", 2);
    b.Ret(b.BinImm(ir::BinOp::kXor,
                   b.BinImm(ir::BinOp::kAdd, b.Param(1), constant), 3));
  }
  (void)vcall_type;

  // Two same-type callbacks (reuse pair) and the attacker function.
  {
    ir::FunctionBuilder b(&module, "cb_first", "i64(i64)#cb", 1);
    b.Ret(b.BinImm(ir::BinOp::kAdd, b.Param(0), 101));
  }
  {
    ir::FunctionBuilder b(&module, "cb_second", "i64(i64)#cb", 1);
    b.Ret(b.BinImm(ir::BinOp::kAdd, b.Param(0), 203));
  }
  {
    // evil: records the sentinel, then behaves like a callback so the run
    // continues (a real payload would do worse).
    ir::FunctionBuilder b(&module, "evil", "i64(i64,i64,i64)#evil", 3);
    const int s = b.AddrOf("scratch");
    b.Store(s, b.Const(kSentinel), kSentinelOffset);
    b.Ret(b.BinImm(ir::BinOp::kAdd, b.Param(0), 999));
  }
  // Keep cb_second and evil address-taken so they exist in GFPTs/ID space
  // like real program functions would.
  ir::Global extra_table;
  extra_table.name = "extra_fns";
  extra_table.quads.push_back(ir::GlobalInit{0, "cb_second"});
  extra_table.quads.push_back(ir::GlobalInit{0, "evil"});
  module.globals.push_back(extra_table);

  // main: loop of vcall + icall.
  {
    ir::FunctionBuilder b(&module, "main", "i64()", 0);
    {
      const int s = b.AddrOf("scratch");
      b.Store(s, b.Const(0), 0);
      b.Store(s, b.Const(1), 8);
      b.Br("loop");
    }
    b.SetBlock("loop");
    {
      const int s = b.AddrOf("scratch");
      const int i = b.Load(s, 0);
      const int cond = b.BinImm(ir::BinOp::kSltu, i,
                                static_cast<std::int64_t>(kVictimIterations));
      b.CondBr(cond, "body", "done");
    }
    b.SetBlock("body");
    {
      const int s = b.AddrOf("scratch");
      const int i = b.Load(s, 0);
      const int acc = b.Load(s, 8);
      // Virtual dispatch on the object.
      const int obj = b.AddrOf("the_object");
      const int vptr = b.Load(obj, 0, 8, ir::Trait::kVPtrLoad, hier_a);
      const int method =
          b.Load(vptr, 0, 8, ir::Trait::kVTableEntryLoad, hier_a);
      const int r1 = b.ICall(method, {obj, acc}, vcall_type,
                             /*has_result=*/true, /*is_vcall=*/true);
      // Indirect callback call.
      const int slot = b.AddrOf("fslot");
      const int fn = b.Load(slot, 0, 8, ir::Trait::kFnPtrLoad, cb_type);
      const int r2 = b.ICall(fn, {r1}, cb_type);
      b.Store(s, r2, 8);
      b.Store(s, b.BinImm(ir::BinOp::kAdd, i, 1), 0);
      b.Br("loop");
    }
    b.SetBlock("done");
    {
      const int s = b.AddrOf("scratch");
      const int acc = b.Load(s, 8);
      b.Ret(b.BinImm(ir::BinOp::kAnd, acc, 63));
    }
  }
  (void)evil_type;
  module.RecomputeAddressTaken();
  return module;
}

StatusOr<AttackResult> RunAttack(AttackKind kind, core::Defense defense,
                                 core::SystemVariant variant) {
  return RunAttackSmp(kind, defense, /*harts=*/1, variant);
}

StatusOr<AttackResult> RunAttackSmp(AttackKind kind, core::Defense defense,
                                    unsigned harts,
                                    core::SystemVariant variant,
                                    unsigned inject_hart) {
  if (inject_hart >= (harts == 0 ? 1u : harts)) {
    return Status::InvalidArgument("inject_hart out of range");
  }
  core::BuildOptions options;
  options.defense = defense;
  auto build = core::Build(MakeVictimModule(), options);
  if (!build.ok()) return build.status();
  const auto& symbols = build->image.symbols;
  auto sym = [&symbols](const std::string& name) -> StatusOr<std::uint64_t> {
    auto it = symbols.find(name);
    if (it == symbols.end()) {
      return Status::NotFound("victim symbol missing: " + name);
    }
    return it->second;
  };

  // Baseline (unattacked) exit code for divergence detection, at the same
  // hart count (the harts cooperatively advance the shared loop counter,
  // so the clean exit code is a function of the interleaving — which the
  // deterministic scheduler makes reproducible).
  std::int64_t baseline_exit = 0;
  {
    smp::SmpConfig config;
    config.variant = variant;
    config.harts = harts;
    smp::Machine machine(config);
    ROLOAD_RETURN_IF_ERROR(machine.Load(build->image));
    const kernel::RunResult run = machine.Run();
    if (run.kind != kernel::ExitKind::kExited) {
      return Status::Internal("victim does not run cleanly under " +
                              std::string(core::DefenseName(defense)));
    }
    baseline_exit = run.exit_code;
  }

  smp::SmpConfig config;
  config.variant = variant;
  config.harts = harts;
  // Forensics on: a blocked run must explain *how* it was blocked (which
  // ld.ro, which keys disagreed) — that's the evidence the result carries.
  config.trace.audit = true;
  smp::Machine machine(config);
  ROLOAD_RETURN_IF_ERROR(machine.Load(build->image));

  // Phase 1: run the victim into its steady state — on an SMP machine,
  // every hart is mid-dispatch when the corruption lands.
  kernel::RunResult phase1 = machine.Run(kPauseInstructions);
  if (phase1.kind != kernel::ExitKind::kInstructionLimit) {
    return Status::Internal("victim finished before the attack landed");
  }

  // Phase 2: the corruption, through the attacker's arbitrary-write
  // primitive. The address space is shared, so whichever hart's debug port
  // carries the write (`inject_hart`) lands on the same memory — the
  // verdict must not depend on the choice.
  auto write64 = [&machine, inject_hart](std::uint64_t addr,
                                         std::uint64_t value) -> Status {
    if (!machine.cpu(inject_hart).DebugWriteVirt(addr, 8, value)) {
      return Status::Internal("arbitrary write failed");
    }
    return Status::Ok();
  };
  switch (kind) {
    case AttackKind::kVtableInjection: {
      auto buffer = sym("attack_buffer");
      auto evil = sym("evil");
      auto object = sym("the_object");
      if (!buffer.ok()) return buffer.status();
      if (!evil.ok()) return evil.status();
      if (!object.ok()) return object.status();
      ROLOAD_RETURN_IF_ERROR(write64(*buffer, *evil));
      ROLOAD_RETURN_IF_ERROR(write64(*object, *buffer));
      break;
    }
    case AttackKind::kVtableReuseCrossHierarchy: {
      auto other = sym("vt_B0");
      auto object = sym("the_object");
      if (!other.ok()) return other.status();
      if (!object.ok()) return object.status();
      ROLOAD_RETURN_IF_ERROR(write64(*object, *other));
      break;
    }
    case AttackKind::kFnPtrCorruptToEvil: {
      auto evil = sym("evil");
      auto slot = sym("fslot");
      if (!evil.ok()) return evil.status();
      if (!slot.ok()) return slot.status();
      ROLOAD_RETURN_IF_ERROR(write64(*slot, *evil));
      break;
    }
    case AttackKind::kFnPtrReuseSameType: {
      // Under ICall the legitimate pointer format is a GFPT entry; the
      // reuse attack swaps in *another* same-type GFPT entry. Under the
      // other defenses it is the raw address of the same-type function.
      auto target = defense == core::Defense::kICall ? sym("gfpt_cb_second")
                                                     : sym("cb_second");
      auto slot = sym("fslot");
      if (!target.ok()) return target.status();
      if (!slot.ok()) return slot.status();
      ROLOAD_RETURN_IF_ERROR(write64(*slot, *target));
      break;
    }
  }

  // Phase 3: let the victim continue.
  const kernel::RunResult phase3 = machine.Run();

  AttackResult result;
  result.roload_violation = phase3.roload_violation;
  result.signal = phase3.signal;
  result.exit_code = phase3.exit_code;
  result.hart = phase3.hart;
  result.harts = harts;
  result.inject_hart = inject_hart;

  std::uint64_t sentinel = 0;
  auto scratch = sym("scratch");
  if (scratch.ok()) {
    machine.cpu(0).DebugReadVirt(
        *scratch + static_cast<std::uint64_t>(kSentinelOffset), 8, &sentinel);
  }

  if (sentinel == static_cast<std::uint64_t>(kSentinel)) {
    result.outcome = AttackOutcome::kHijacked;
  } else if (phase3.kind == kernel::ExitKind::kKilled) {
    result.outcome = AttackOutcome::kBlocked;
  } else if (phase3.kind == kernel::ExitKind::kExited &&
             phase3.exit_code == 134) {
    result.outcome = AttackOutcome::kBlocked;  // CFI/VTint abort path
  } else if (phase3.exit_code != baseline_exit) {
    result.outcome = AttackOutcome::kDiverted;
  } else {
    result.outcome = AttackOutcome::kNoEffect;
  }

  // Forensic verdict. The auditor is always attached here, so a fault-path
  // block always comes with an autopsy.
  const audit::Auditor* auditor = machine.audit();
  if (auditor != nullptr && !auditor->autopsies().empty()) {
    const audit::Autopsy& autopsy = auditor->autopsies().back();
    result.has_autopsy = true;
    result.fault_pc = autopsy.fault_pc;
    result.fault_va = autopsy.fault_va;
    result.inst_key = autopsy.inst_key;
    result.pte_key = autopsy.pte_key;
    result.page_mapped = autopsy.page_mapped;
    result.page_writable = autopsy.page_writable;
  }
  switch (result.outcome) {
    case AttackOutcome::kHijacked:
      result.classification = "missed:hijacked";
      break;
    case AttackOutcome::kDiverted:
      result.classification = "diverted:in-allowlist";
      break;
    case AttackOutcome::kNoEffect:
      result.classification = "no-effect";
      break;
    case AttackOutcome::kBlocked:
      if (result.has_autopsy && auditor != nullptr) {
        const audit::Autopsy& autopsy = auditor->autopsies().back();
        const std::string site = auditor->NearestSymbol(autopsy.fault_pc);
        result.classification =
            "caught:" + autopsy.classification +
            (site.empty() ? "" : "@" + site);
      } else if (phase3.kind == kernel::ExitKind::kExited) {
        result.classification = "caught:cfi-abort";
      } else {
        result.classification = "caught:signal";
      }
      break;
  }
  result.counters = machine.trace().counters().Snapshot();
  return result;
}

}  // namespace roload::sec
