#include "support/rng.h"

#include "support/status.h"

namespace roload {

std::uint64_t Rng::NextU64() {
  state_ += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  ROLOAD_CHECK(bound > 0);
  // Modulo bias is negligible for the bounds used here (<< 2^32).
  return NextU64() % bound;
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  ROLOAD_CHECK(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  return lo + static_cast<std::int64_t>(NextBelow(span));
}

bool Rng::NextPercent(unsigned percent) {
  return NextBelow(100) < percent;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::uint64_t DeriveSeed(std::uint64_t base, std::uint64_t index) {
  // Spacing the index by the SplitMix64 golden-ratio increment puts each
  // run on its own position of the base stream; the NextU64 mix makes the
  // resulting seeds pairwise uncorrelated. Seed 0 is avoided because
  // several generators treat it as "use the default".
  Rng rng(base ^ ((index + 1) * 0x9E3779B97F4A7C15ull));
  const std::uint64_t seed = rng.NextU64();
  return seed != 0 ? seed : 1;
}

std::size_t Rng::NextWeighted(const std::vector<unsigned>& weights) {
  std::uint64_t total = 0;
  for (unsigned w : weights) total += w;
  ROLOAD_CHECK(total > 0);
  std::uint64_t pick = NextBelow(total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (pick < weights[i]) return i;
    pick -= weights[i];
  }
  return weights.size() - 1;
}

}  // namespace roload
