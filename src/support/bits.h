// Bit-manipulation helpers shared by the ISA encoder/decoder, the MMU and
// the netlist tooling.
#pragma once

#include <cstdint>

namespace roload {

// Extracts bits [hi:lo] (inclusive, hi >= lo) of `value`.
constexpr std::uint64_t ExtractBits(std::uint64_t value, unsigned hi,
                                    unsigned lo) {
  const unsigned width = hi - lo + 1;
  if (width >= 64) return value >> lo;
  return (value >> lo) & ((std::uint64_t{1} << width) - 1);
}

// Returns `value` with bits [hi:lo] replaced by the low bits of `field`.
constexpr std::uint64_t InsertBits(std::uint64_t value, unsigned hi,
                                   unsigned lo, std::uint64_t field) {
  const unsigned width = hi - lo + 1;
  const std::uint64_t mask =
      width >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << width) - 1);
  return (value & ~(mask << lo)) | ((field & mask) << lo);
}

// Sign-extends the low `bits` bits of `value` to 64 bits.
constexpr std::int64_t SignExtend(std::uint64_t value, unsigned bits) {
  const unsigned shift = 64 - bits;
  return static_cast<std::int64_t>(value << shift) >> shift;
}

// True if `value` fits in a signed `bits`-bit immediate.
constexpr bool FitsSigned(std::int64_t value, unsigned bits) {
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  return value >= lo && value <= hi;
}

// True if `value` fits in an unsigned `bits`-bit immediate.
constexpr bool FitsUnsigned(std::uint64_t value, unsigned bits) {
  if (bits >= 64) return true;
  return value < (std::uint64_t{1} << bits);
}

constexpr bool IsPowerOfTwo(std::uint64_t value) {
  return value != 0 && (value & (value - 1)) == 0;
}

// log2 of a power of two.
constexpr unsigned Log2(std::uint64_t value) {
  unsigned result = 0;
  while (value > 1) {
    value >>= 1;
    ++result;
  }
  return result;
}

constexpr std::uint64_t AlignDown(std::uint64_t value, std::uint64_t align) {
  return value & ~(align - 1);
}

constexpr std::uint64_t AlignUp(std::uint64_t value, std::uint64_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace roload
