#include "support/status.h"

#include <cstdio>
#include <cstdlib>

namespace roload {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

void FatalError(std::string_view message) {
  std::fprintf(stderr, "roload fatal: %.*s\n",
               static_cast<int>(message.size()), message.data());
  std::abort();
}

}  // namespace roload
