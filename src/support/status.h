// Lightweight status / expected-value error handling for the ROLoad
// libraries. Simulator-internal faults (page faults, traps) are *values*,
// not errors; Status is reserved for genuine API misuse and I/O failures.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace roload {

// Error category for Status. Kept deliberately small: callers branch on
// ok()/!ok() far more often than on the specific code.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
};

std::string_view StatusCodeName(StatusCode code);

// Value-semantic status object. Cheap to copy when OK (no allocation).
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Expected-value wrapper: either a T or a non-OK Status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  StatusOr(T value) : value_(std::move(value)) {}          // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

// Aborts with a message when `condition` is false. Used for invariants that
// indicate programming errors inside the simulator, never for guest faults.
[[noreturn]] void FatalError(std::string_view message);

#define ROLOAD_CHECK(cond)                                             \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::roload::FatalError("check failed: " #cond " at " __FILE__);    \
    }                                                                  \
  } while (false)

#define ROLOAD_RETURN_IF_ERROR(expr)         \
  do {                                       \
    ::roload::Status status_ = (expr);       \
    if (!status_.ok()) return status_;       \
  } while (false)

}  // namespace roload
