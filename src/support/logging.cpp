#include "support/logging.h"

#include <cstdio>

namespace roload {
namespace {
LogLevel g_level = LogLevel::kWarning;

std::string_view LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void LogMessage(LogLevel level, std::string_view message) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%.*s] %.*s\n",
               static_cast<int>(LevelName(level).size()),
               LevelName(level).data(), static_cast<int>(message.size()),
               message.data());
}

}  // namespace roload
