// Minimal leveled logging. Default level is kWarning so simulations stay
// quiet; tests and tools may raise verbosity.
#pragma once

#include <sstream>
#include <string_view>

namespace roload {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogMessage(LogLevel level, std::string_view message);

// Stream-style log statement: ROLOAD_LOG(kInfo) << "tlb miss at " << addr;
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

#define ROLOAD_LOG(level)                                  \
  if (::roload::GetLogLevel() <= ::roload::LogLevel::level) \
  ::roload::LogStream(::roload::LogLevel::level)

}  // namespace roload
