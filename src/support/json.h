// Minimal streaming JSON writer used by the telemetry exporters and the
// bench result files. Emits deterministic, human-diffable output (fixed
// key order is the caller's responsibility; numbers are printed with a
// stable format), which is what the golden-file tests rely on.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace roload {

// Escapes `text` per RFC 8259 (quotes, backslash, control characters).
std::string JsonEscape(std::string_view text);

// Structured writer: push objects/arrays, emit key/value pairs, and read
// the finished document with str(). Misuse (value without a key inside an
// object, unclosed containers) trips a ROLOAD_CHECK.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty = true) : pretty_(pretty) {}

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Keys apply to the next Begin*/value inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) {
    return Value(std::string_view(value));
  }
  JsonWriter& Value(std::uint64_t value);
  JsonWriter& Value(std::int64_t value);
  JsonWriter& Value(int value) { return Value(static_cast<std::int64_t>(value)); }
  JsonWriter& Value(double value);
  JsonWriter& Value(bool value);

  // Convenience: Key(key) + Value(value).
  template <typename T>
  JsonWriter& KV(std::string_view key, T&& value) {
    Key(key);
    return Value(std::forward<T>(value));
  }

  // The finished document; checks every container was closed.
  const std::string& str() const;

 private:
  enum class Scope : std::uint8_t { kObject, kArray };

  void BeforeValue();
  void Indent();

  bool pretty_;
  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> first_in_scope_;
  bool key_pending_ = false;
};

}  // namespace roload
