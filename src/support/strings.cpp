#include "support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace roload {

std::string_view StripWhitespace(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string_view> SplitString(std::string_view text, char sep,
                                          bool keep_empty) {
  std::vector<std::string_view> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      std::string_view part = text.substr(start, i - start);
      if (keep_empty || !part.empty()) parts.push_back(part);
      start = i + 1;
    }
  }
  return parts;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t> ParseInt(std::string_view text) {
  text = StripWhitespace(text);
  if (text.empty()) return std::nullopt;
  bool negative = false;
  if (text[0] == '-') {
    negative = true;
    text.remove_prefix(1);
  } else if (text[0] == '+') {
    text.remove_prefix(1);
  }
  if (text.empty()) return std::nullopt;

  int base = 10;
  if (StartsWith(text, "0x") || StartsWith(text, "0X")) {
    base = 16;
    text.remove_prefix(2);
  } else if (StartsWith(text, "0b") || StartsWith(text, "0B")) {
    base = 2;
    text.remove_prefix(2);
  }
  if (text.empty()) return std::nullopt;

  std::uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    if (digit >= base) return std::nullopt;
    value = value * base + static_cast<std::uint64_t>(digit);
  }
  const std::int64_t signed_value = static_cast<std::int64_t>(value);
  return negative ? -signed_value : signed_value;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string result(static_cast<std::size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return result;
}

}  // namespace roload
