#include "support/json.h"

#include <cmath>

#include "support/status.h"
#include "support/strings.h"

namespace roload {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::Indent() {
  if (!pretty_) return;
  out_ += '\n';
  out_.append(stack_.size() * 2, ' ');
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    ROLOAD_CHECK(out_.empty());  // exactly one top-level value
    return;
  }
  if (stack_.back() == Scope::kObject) {
    ROLOAD_CHECK(key_pending_);
    key_pending_ = false;
    return;
  }
  // Array element.
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  Indent();
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  ROLOAD_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  ROLOAD_CHECK(!key_pending_);
  if (!first_in_scope_.back()) out_ += ',';
  first_in_scope_.back() = false;
  Indent();
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += pretty_ ? "\": " : "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  ROLOAD_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  ROLOAD_CHECK(!key_pending_);
  const bool empty = first_in_scope_.back();
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) Indent();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  ROLOAD_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool empty = first_in_scope_.back();
  stack_.pop_back();
  first_in_scope_.pop_back();
  if (!empty) Indent();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Value(std::uint64_t value) {
  BeforeValue();
  out_ += StrFormat("%llu", static_cast<unsigned long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Value(std::int64_t value) {
  BeforeValue();
  out_ += StrFormat("%lld", static_cast<long long>(value));
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";  // JSON has no Inf/NaN
    return *this;
  }
  // %.6g keeps integers short ("3" not "3.000000") and is stable across
  // platforms for the magnitudes we emit (percentages, cycle ratios).
  out_ += StrFormat("%.6g", value);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

const std::string& JsonWriter::str() const {
  ROLOAD_CHECK(stack_.empty() && !out_.empty());
  return out_;
}

}  // namespace roload
