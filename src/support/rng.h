// Deterministic pseudo-random number generation. All stochastic choices in
// workload generation and attack injection flow through SplitMix64 so runs
// are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace roload {

// SplitMix64: tiny, fast, and deterministic across platforms (unlike
// std::mt19937 paired with std::uniform_int_distribution).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // True with probability `percent`/100.
  bool NextPercent(unsigned percent);

  // Uniform double in [0, 1).
  double NextDouble();

  // Picks an index according to integer weights (sum must be > 0).
  std::size_t NextWeighted(const std::vector<unsigned>& weights);

 private:
  std::uint64_t state_;
};

// Derives an independent per-run seed from a base seed and a run index —
// one SplitMix64 output over a decorrelated state, so campaign sweeps get
// statistically distinct workload seeds that are stable across platforms
// and across the order runs actually execute in.
std::uint64_t DeriveSeed(std::uint64_t base, std::uint64_t index);

}  // namespace roload
