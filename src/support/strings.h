// Small string utilities used by the assembler and the IR printer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace roload {

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Splits on `sep`, optionally keeping empty fields.
std::vector<std::string_view> SplitString(std::string_view text, char sep,
                                          bool keep_empty = false);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Parses a signed integer with optional 0x/0b prefix and leading '-'.
std::optional<std::int64_t> ParseInt(std::string_view text);

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace roload
