#include "support/bits.h"

// Header-only; this translation unit exists so the library has an archive
// member even when only bits.h is used.
namespace roload {
namespace {
[[maybe_unused]] constexpr std::uint64_t kSelfTest =
    ExtractBits(0xF0, 7, 4);
static_assert(kSelfTest == 0xF);
static_assert(SignExtend(0x800, 12) == -2048);
static_assert(InsertBits(0, 13, 4, 0x3FF) == (0x3FFu << 4));
}  // namespace
}  // namespace roload
