// Physical memory model: a flat byte-addressable DRAM with little-endian
// multi-byte accessors, mirroring the 4 GiB DDR3 SO-DIMM of the prototype.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "support/status.h"

namespace roload::mem {

inline constexpr std::uint64_t kPageSize = 4096;
inline constexpr unsigned kPageShift = 12;

class PhysMemory {
 public:
  explicit PhysMemory(std::uint64_t size_bytes);

  std::uint64_t size() const { return bytes_.size(); }
  bool Contains(std::uint64_t addr, unsigned bytes) const {
    return addr + bytes <= bytes_.size() && addr + bytes >= addr;
  }

  // Checked accessors; width in {1,2,4,8}; little-endian.
  std::uint64_t Read(std::uint64_t addr, unsigned bytes) const;
  void Write(std::uint64_t addr, unsigned bytes, std::uint64_t value);

  // Inline unchecked variants for the CPU's host fast paths: identical to
  // Read/Write minus the bounds CHECK — every caller sits behind a
  // Contains() test that already proved the range. Gated in the CPU by
  // CpuConfig::host_unchecked_mem so the reference mode keeps the checked
  // out-of-line calls the seed simulator made.
  std::uint64_t ReadUnchecked(std::uint64_t addr, unsigned bytes) const {
    std::uint64_t value = 0;
    std::memcpy(&value, bytes_.data() + addr, bytes);
    return value;
  }
  void WriteUnchecked(std::uint64_t addr, unsigned bytes,
                      std::uint64_t value) {
    std::memcpy(bytes_.data() + addr, &value, bytes);
  }

  // Width-dispatched unchecked accessors for the translated tier's inline
  // memory micro-ops: same values and semantics as ReadUnchecked /
  // WriteUnchecked, but each memcpy length is a compile-time constant so
  // the access lowers to one host load/store instead of a variable-length
  // copy. `bytes` is a decoded access width, always in {1, 2, 4, 8}.
  std::uint64_t ReadUncheckedWidth(std::uint64_t addr, unsigned bytes) const {
    const std::uint8_t* src = bytes_.data() + addr;
    switch (bytes) {
      case 1: {
        std::uint8_t v;
        std::memcpy(&v, src, 1);
        return v;
      }
      case 2: {
        std::uint16_t v;
        std::memcpy(&v, src, 2);
        return v;
      }
      case 4: {
        std::uint32_t v;
        std::memcpy(&v, src, 4);
        return v;
      }
      default: {
        std::uint64_t v;
        std::memcpy(&v, src, 8);
        return v;
      }
    }
  }
  void WriteUncheckedWidth(std::uint64_t addr, unsigned bytes,
                           std::uint64_t value) {
    std::uint8_t* dst = bytes_.data() + addr;
    switch (bytes) {
      case 1: {
        const std::uint8_t v = static_cast<std::uint8_t>(value);
        std::memcpy(dst, &v, 1);
        return;
      }
      case 2: {
        const std::uint16_t v = static_cast<std::uint16_t>(value);
        std::memcpy(dst, &v, 2);
        return;
      }
      case 4: {
        const std::uint32_t v = static_cast<std::uint32_t>(value);
        std::memcpy(dst, &v, 4);
        return;
      }
      default:
        std::memcpy(dst, &value, 8);
        return;
    }
  }

  // Bulk copy used by the loader.
  void WriteBlock(std::uint64_t addr, const std::uint8_t* data,
                  std::uint64_t size);
  void Fill(std::uint64_t addr, std::uint64_t size, std::uint8_t value);

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace roload::mem
