#include "mem/phys_memory.h"

#include <cstring>

namespace roload::mem {

PhysMemory::PhysMemory(std::uint64_t size_bytes) : bytes_(size_bytes, 0) {}

std::uint64_t PhysMemory::Read(std::uint64_t addr, unsigned bytes) const {
  ROLOAD_CHECK(Contains(addr, bytes));
  std::uint64_t value = 0;
  std::memcpy(&value, bytes_.data() + addr, bytes);
  return value;
}

void PhysMemory::Write(std::uint64_t addr, unsigned bytes,
                       std::uint64_t value) {
  ROLOAD_CHECK(Contains(addr, bytes));
  std::memcpy(bytes_.data() + addr, &value, bytes);
}

void PhysMemory::WriteBlock(std::uint64_t addr, const std::uint8_t* data,
                            std::uint64_t size) {
  ROLOAD_CHECK(Contains(addr, static_cast<unsigned>(0)) &&
               addr + size <= bytes_.size());
  std::memcpy(bytes_.data() + addr, data, size);
}

void PhysMemory::Fill(std::uint64_t addr, std::uint64_t size,
                      std::uint8_t value) {
  ROLOAD_CHECK(addr + size <= bytes_.size());
  std::memset(bytes_.data() + addr, value, size);
}

}  // namespace roload::mem
