#include "mem/page_table.h"

namespace roload::mem {

Pte Pte::MakeLeaf(std::uint64_t ppn, std::uint64_t flags, std::uint32_t key) {
  ROLOAD_CHECK(key <= kPteKeyMax);
  Pte pte;
  pte.raw_ = InsertBits(0, 53, 10, ppn) | (flags & 0xFF) | kPteValid;
  pte.set_key(key);
  return pte;
}

Pte Pte::MakeNonLeaf(std::uint64_t ppn) {
  Pte pte;
  pte.raw_ = InsertBits(0, 53, 10, ppn) | kPteValid;
  return pte;
}

bool IsCanonicalSv39(std::uint64_t virt_addr) {
  const std::uint64_t top = virt_addr >> 38;
  return top == 0 || top == 0x3FFFFFF;
}

std::optional<WalkResult> PageWalker::Walk(std::uint64_t root_ppn,
                                           std::uint64_t virt_addr) const {
  last_walk_accesses_ = 0;
  if (!IsCanonicalSv39(virt_addr)) return std::nullopt;

  std::uint64_t table_ppn = root_ppn;
  for (int level = kSv39Levels - 1; level >= 0; --level) {
    const unsigned shift = kPageShift + kVpnBits * static_cast<unsigned>(level);
    const std::uint64_t vpn = ExtractBits(virt_addr, shift + kVpnBits - 1,
                                          shift);
    const std::uint64_t pte_addr = (table_ppn << kPageShift) + vpn * 8;
    if (!memory_->Contains(pte_addr, 8)) return std::nullopt;
    ++last_walk_accesses_;
    const Pte pte(memory_->Read(pte_addr, 8));
    if (!pte.valid()) return std::nullopt;
    if (pte.leaf()) {
      // Superpage alignment: low PPN bits must be zero.
      const std::uint64_t page_mask =
          (std::uint64_t{1} << (kVpnBits * static_cast<unsigned>(level))) - 1;
      if ((pte.ppn() & page_mask) != 0) return std::nullopt;
      WalkResult result;
      result.level = static_cast<unsigned>(level);
      result.pte = pte;
      result.pte_addr = pte_addr;
      const std::uint64_t offset_bits =
          kPageShift + kVpnBits * static_cast<unsigned>(level);
      const std::uint64_t offset =
          virt_addr & ((std::uint64_t{1} << offset_bits) - 1);
      result.phys_addr = (pte.ppn() << kPageShift) + offset;
      return result;
    }
    table_ppn = pte.ppn();
  }
  return std::nullopt;  // non-leaf at the last level is malformed
}

}  // namespace roload::mem
