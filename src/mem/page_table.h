// Sv39 page-table entries extended with the ROLoad 10-bit page key, and a
// software page-table walker.
//
// RISC-V Sv39 PTEs are 64 bits. Bits [53:10] hold the PPN, bits [9:8] are
// reserved for software (RSW), bits [7:0] are D A G U X W R V. The paper
// reuses "the previously reserved top 10 bits" of the PTE for the key, i.e.
// bits [63:54]; we do the same.
#pragma once

#include <cstdint>
#include <optional>

#include "mem/phys_memory.h"
#include "support/bits.h"

namespace roload::mem {

// PTE permission/status flag bits (Sv39).
enum PteFlag : std::uint64_t {
  kPteValid = 1u << 0,
  kPteRead = 1u << 1,
  kPteWrite = 1u << 2,
  kPteExec = 1u << 3,
  kPteUser = 1u << 4,
  kPteGlobal = 1u << 5,
  kPteAccessed = 1u << 6,
  kPteDirty = 1u << 7,
};

inline constexpr unsigned kPteKeyLo = 54;
inline constexpr unsigned kPteKeyHi = 63;
inline constexpr std::uint32_t kPteKeyMax = 1023;  // 10-bit field
// Key 0 is the default for pages never tagged; applications must use keys
// >= 1 for allowlists so an untagged read-only page never satisfies a
// keyed ROLoad by accident.
inline constexpr std::uint32_t kDefaultPageKey = 0;

// Value-type view of a 64-bit PTE with the ROLoad key field.
class Pte {
 public:
  Pte() = default;
  explicit Pte(std::uint64_t raw) : raw_(raw) {}

  static Pte MakeLeaf(std::uint64_t ppn, std::uint64_t flags,
                      std::uint32_t key);
  static Pte MakeNonLeaf(std::uint64_t ppn);

  std::uint64_t raw() const { return raw_; }
  bool valid() const { return (raw_ & kPteValid) != 0; }
  bool readable() const { return (raw_ & kPteRead) != 0; }
  bool writable() const { return (raw_ & kPteWrite) != 0; }
  bool executable() const { return (raw_ & kPteExec) != 0; }
  bool user() const { return (raw_ & kPteUser) != 0; }
  // A valid PTE with R=W=X=0 is a pointer to the next level table.
  bool leaf() const { return (raw_ & (kPteRead | kPteWrite | kPteExec)) != 0; }

  std::uint64_t ppn() const { return ExtractBits(raw_, 53, 10); }
  std::uint32_t key() const {
    return static_cast<std::uint32_t>(ExtractBits(raw_, kPteKeyHi, kPteKeyLo));
  }

  void set_key(std::uint32_t key) {
    raw_ = InsertBits(raw_, kPteKeyHi, kPteKeyLo, key);
  }
  void set_flags(std::uint64_t flags) {
    raw_ = (raw_ & ~std::uint64_t{0xFF}) | (flags & 0xFF);
  }

 private:
  std::uint64_t raw_ = 0;
};

// Result of a page walk: where the page is and what it allows.
struct WalkResult {
  std::uint64_t phys_addr = 0;  // translated physical address
  Pte pte;                      // leaf PTE (includes key + permissions)
  std::uint64_t pte_addr = 0;   // physical address of the leaf PTE
  unsigned level = 0;           // 0 = 4 KiB leaf, 1 = 2 MiB, 2 = 1 GiB
};

// Software Sv39 walker operating on PTEs stored in simulated physical
// memory — the model of the hardware page-table walker.
class PageWalker {
 public:
  explicit PageWalker(PhysMemory* memory) : memory_(memory) {}

  // Walks `virt_addr` starting from the root table at `root_ppn`.
  // Returns nullopt when the mapping is absent/malformed (page fault).
  std::optional<WalkResult> Walk(std::uint64_t root_ppn,
                                 std::uint64_t virt_addr) const;

  // Number of memory accesses performed by the last walk (for the timing
  // model: each level costs one memory access).
  unsigned last_walk_accesses() const { return last_walk_accesses_; }

 private:
  PhysMemory* memory_;
  mutable unsigned last_walk_accesses_ = 0;
};

// Sv39 constants.
inline constexpr unsigned kVpnBits = 9;
inline constexpr unsigned kSv39Levels = 3;
inline constexpr std::uint64_t kPtesPerPage = 512;

// True when `virt_addr` is canonical for Sv39 (bits 63:39 equal bit 38).
bool IsCanonicalSv39(std::uint64_t virt_addr);

}  // namespace roload::mem
