// Gate-level models of the D-TLB lookup + permission-check datapath, in
// both the baseline and ROLoad variants, plus calibrated block inventories
// for the rest of the Rocket core and the whole FPGA system. Together they
// regenerate Table III: the *delta* between the two variants comes entirely
// from synthesized structure (key storage flip-flops, key match mux +
// comparator, read-only qualification, new-instruction decode), while the
// unmodified remainder of the core/system is a calibrated constant.
#pragma once

#include <cstdint>

#include "hw/mapper.h"
#include "hw/netlist.h"

namespace roload::hw {

struct TlbDatapathConfig {
  unsigned entries = 32;     // Table II: 32-entry D-TLB
  unsigned vpn_bits = 27;    // Sv39 virtual page number
  unsigned ppn_bits = 28;    // physical page number stored per entry
  unsigned flag_bits = 8;    // V R W X U G A D
  unsigned key_bits = 10;    // ROLoad PTE key field (top reserved bits)
  bool with_roload = false;
  // Ablation: evaluate the ROLoad check in series after the permission
  // logic instead of in parallel (the paper ANDs the outputs in parallel).
  bool serial_check = false;
};

// Builds the datapath netlist. Primary inputs: lookup VPN, access-type
// (is_store / is_fetch / is_roload), instruction key. Primary outputs:
// hit, translated PPN bits, access-allowed. Flip-flops hold the TLB
// entries (tags, PPNs, flags, and keys when with_roload).
Netlist BuildTlbDatapath(const TlbDatapathConfig& config);

// Builds just the ROLoad permission-check function as a pure combinational
// netlist: inputs readable, writable, user, page_key[n], inst_key[n];
// output allow. Used for exhaustive equivalence checks against
// tlb::RoLoadCheck.
Netlist BuildRoLoadCheckNetlist(unsigned key_bits);

// Decode-stage delta: recognizing ld.ro-family (custom-0 major opcode +
// funct3) and c.ld.ro (compressed quadrant 0, funct3 100) from a 32-bit
// parcel, extracting the 10-bit key, and pipelining it to the memory
// stage. Only built for the ROLoad variant.
Netlist BuildRoLoadDecodeDelta();

// Calibrated inventory (Table III reproduction): synthesizes both TLB
// variants (+ decode delta for ROLoad) and adds the published constants
// for the untouched remainder of the core/system.
struct TableIIIRow {
  unsigned core_luts = 0;
  unsigned core_ffs = 0;
  unsigned system_luts = 0;
  unsigned system_ffs = 0;
  double worst_slack_ns = 0.0;
  double fmax_mhz = 0.0;
};

struct TableIII {
  TableIIIRow without_ldro;
  TableIIIRow with_ldro;
  double core_lut_increase_percent = 0.0;
  double core_ff_increase_percent = 0.0;
  double system_lut_increase_percent = 0.0;
  double system_ff_increase_percent = 0.0;
};

TableIII ComputeTableIII(const MapperConfig& mapper = {});

// Paper-published baseline constants used for calibration (Table III).
inline constexpr unsigned kPaperCoreLuts = 20722;
inline constexpr unsigned kPaperCoreFfs = 11855;
inline constexpr unsigned kPaperSystemLuts = 37428;
inline constexpr unsigned kPaperSystemFfs = 29913;

}  // namespace roload::hw
