// Structural gate-level netlist with flip-flops: the substrate for the
// hardware-cost experiments (Table III). Netlists are built by the
// datapath constructors in tlb_datapath.h, technology-mapped to 6-input
// LUTs by mapper.h, and functionally evaluated for equivalence tests
// against the simulator's TLB check logic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/status.h"

namespace roload::hw {

enum class GateKind : std::uint8_t {
  kInput,
  kConst0,
  kConst1,
  kBuf,
  kNot,
  kAnd,
  kOr,
  kXor,
  kXnor,
  kMux2,  // inputs: {sel, a, b} -> sel ? b : a
  kFlipFlopQ,  // output of a flip-flop; its D input is wired separately
};

// Signal index into the netlist.
using Signal = int;

struct Gate {
  GateKind kind = GateKind::kBuf;
  std::vector<Signal> inputs;
  std::string name;  // inputs and named nets only (debugging)
};

class Netlist {
 public:
  // Primary input with a name (evaluation binds by index).
  Signal AddInput(const std::string& name);
  Signal Const0();
  Signal Const1();

  Signal Not(Signal a);
  Signal And(Signal a, Signal b);
  Signal Or(Signal a, Signal b);
  Signal Xor(Signal a, Signal b);
  Signal Xnor(Signal a, Signal b);
  Signal Mux(Signal sel, Signal a, Signal b);

  // Reductions over a vector of signals (balanced trees).
  Signal AndReduce(const std::vector<Signal>& signals);
  Signal OrReduce(const std::vector<Signal>& signals);

  // n-bit equality comparator.
  Signal Equal(const std::vector<Signal>& a, const std::vector<Signal>& b);

  // Registers a flip-flop: returns its Q output signal. D inputs are
  // attached later with BindFlipFlop (allows feedback).
  Signal AddFlipFlop(const std::string& name);
  void BindFlipFlop(Signal q, Signal d);

  // Marks a primary output.
  void AddOutput(const std::string& name, Signal signal);

  unsigned num_gates() const { return static_cast<unsigned>(gates_.size()); }
  unsigned num_inputs() const { return static_cast<unsigned>(inputs_.size()); }
  unsigned num_flip_flops() const {
    return static_cast<unsigned>(flip_flops_.size());
  }
  unsigned num_outputs() const {
    return static_cast<unsigned>(outputs_.size());
  }

  const Gate& gate(Signal signal) const { return gates_[static_cast<std::size_t>(signal)]; }
  const std::vector<Signal>& primary_inputs() const { return inputs_; }
  const std::vector<std::pair<std::string, Signal>>& outputs() const {
    return outputs_;
  }
  struct FlipFlop {
    Signal q = -1;
    Signal d = -1;
  };
  const std::vector<FlipFlop>& flip_flops() const { return flip_flops_; }

  // Combinational evaluation: binds primary inputs (by registration order)
  // and current flip-flop Q values, returns each primary output.
  // `ff_state` may be empty when the netlist has no flip-flops.
  std::vector<bool> Evaluate(const std::vector<bool>& input_values,
                             const std::vector<bool>& ff_state = {}) const;

  // Next flip-flop state for the same bindings (one clock edge).
  std::vector<bool> NextState(const std::vector<bool>& input_values,
                              const std::vector<bool>& ff_state) const;

 private:
  Signal AddGate(GateKind kind, std::vector<Signal> inputs,
                 std::string name = {});
  std::vector<bool> EvaluateAll(const std::vector<bool>& input_values,
                                const std::vector<bool>& ff_state) const;

  std::vector<Gate> gates_;
  std::vector<Signal> inputs_;
  std::vector<std::pair<std::string, Signal>> outputs_;
  std::vector<FlipFlop> flip_flops_;
  Signal const0_ = -1;
  Signal const1_ = -1;
};

// Convenience: an n-bit bus of inputs named "<name>[i]".
std::vector<Signal> InputBus(Netlist* netlist, const std::string& name,
                             unsigned width);
// An n-bit bus of flip-flops named "<name>[i]".
std::vector<Signal> FlipFlopBus(Netlist* netlist, const std::string& name,
                                unsigned width);

}  // namespace roload::hw
