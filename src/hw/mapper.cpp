#include "hw/mapper.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/status.h"

namespace roload::hw {
namespace {

bool IsCombinational(GateKind kind) {
  switch (kind) {
    case GateKind::kBuf:
    case GateKind::kNot:
    case GateKind::kAnd:
    case GateKind::kOr:
    case GateKind::kXor:
    case GateKind::kXnor:
    case GateKind::kMux2:
      return true;
    default:
      return false;
  }
}

bool IsLeaf(GateKind kind) {
  return kind == GateKind::kInput || kind == GateKind::kFlipFlopQ ||
         kind == GateKind::kConst0 || kind == GateKind::kConst1;
}

}  // namespace

MapResult MapNetlist(const Netlist& netlist, const MapperConfig& config) {
  const unsigned n = netlist.num_gates();
  // Greedy cone packing in topological order (gates are already in
  // topological order by construction). For each combinational gate we
  // track the set of "cut leaves" (LUT inputs) of the cone rooted at it and
  // its LUT depth. When merging the operand cones would exceed k inputs,
  // the larger operand cones are sealed into LUTs of their own (becoming
  // single leaves), which is the classic level-limited packing heuristic.
  std::vector<std::set<Signal>> leaves(n);
  std::vector<unsigned> depth(n, 0);       // LUT levels below this signal
  std::vector<bool> sealed(n, false);      // signal is a LUT output
  std::vector<unsigned> fanout(n, 0);
  unsigned luts = 0;

  for (Signal s = 0; s < static_cast<Signal>(n); ++s) {
    for (Signal input : netlist.gate(s).inputs) {
      ++fanout[static_cast<std::size_t>(input)];
    }
  }
  // FF D-inputs also consume their driver.
  for (const Netlist::FlipFlop& ff : netlist.flip_flops()) {
    if (ff.d >= 0) ++fanout[static_cast<std::size_t>(ff.d)];
  }
  for (const auto& [name, signal] : netlist.outputs()) {
    (void)name;
    ++fanout[static_cast<std::size_t>(signal)];
  }

  auto seal = [&](Signal s) {
    const auto index = static_cast<std::size_t>(s);
    if (sealed[index] || IsLeaf(netlist.gate(s).kind)) return;
    sealed[index] = true;
    ++luts;
    depth[index] += 1;
    leaves[index] = {s};
  };

  for (Signal s = 0; s < static_cast<Signal>(n); ++s) {
    const auto index = static_cast<std::size_t>(s);
    const Gate& gate = netlist.gate(s);
    if (IsLeaf(gate.kind)) {
      leaves[index] = {s};
      depth[index] = 0;
      continue;
    }
    if (!IsCombinational(gate.kind)) continue;

    // Multi-fanout cones are sealed so their logic is not duplicated.
    for (Signal input : gate.inputs) {
      if (fanout[static_cast<std::size_t>(input)] > 1) seal(input);
    }

    std::set<Signal> merged;
    unsigned level = 0;
    for (Signal input : gate.inputs) {
      merged.insert(leaves[static_cast<std::size_t>(input)].begin(),
                    leaves[static_cast<std::size_t>(input)].end());
      level = std::max(level, depth[static_cast<std::size_t>(input)]);
    }
    if (merged.size() > config.lut_inputs) {
      // Seal the deepest/biggest operand cones until the merge fits.
      std::vector<Signal> operands(gate.inputs.begin(), gate.inputs.end());
      std::sort(operands.begin(), operands.end(), [&](Signal a, Signal b) {
        return leaves[static_cast<std::size_t>(a)].size() >
               leaves[static_cast<std::size_t>(b)].size();
      });
      for (Signal op : operands) {
        if (merged.size() <= config.lut_inputs) break;
        seal(op);
        merged.clear();
        level = 0;
        for (Signal input : gate.inputs) {
          merged.insert(leaves[static_cast<std::size_t>(input)].begin(),
                        leaves[static_cast<std::size_t>(input)].end());
          level = std::max(level, depth[static_cast<std::size_t>(input)]);
        }
      }
      ROLOAD_CHECK(merged.size() <= config.lut_inputs);
    }
    leaves[index] = std::move(merged);
    depth[index] = level;
  }

  // Seal every signal that feeds an FF or a primary output.
  unsigned max_depth = 0;
  auto finalize = [&](Signal s) {
    seal(s);
    max_depth = std::max(max_depth, depth[static_cast<std::size_t>(s)]);
  };
  for (const Netlist::FlipFlop& ff : netlist.flip_flops()) {
    if (ff.d >= 0) finalize(ff.d);
  }
  for (const auto& [name, signal] : netlist.outputs()) {
    (void)name;
    finalize(signal);
  }

  MapResult result;
  result.luts = luts;
  result.flip_flops = netlist.num_flip_flops();
  result.depth_levels = std::max(max_depth, config.core_floor_levels);
  result.critical_path_ns = config.ns_clk_to_q_plus_setup +
                            result.depth_levels * config.ns_per_lut_level +
                            config.ns_routing_per_lut * luts;
  const double period_ns = 1000.0 / config.target_mhz;
  result.worst_slack_ns = period_ns - result.critical_path_ns;
  result.fmax_mhz = 1000.0 / result.critical_path_ns;
  return result;
}

}  // namespace roload::hw
