#include "hw/tlb_datapath.h"

#include "support/strings.h"

namespace roload::hw {
namespace {

// One-hot select of an n-bit bus per entry: out[b] = OR_e(hit[e] & bus[e][b]).
std::vector<Signal> OneHotMuxBus(Netlist* nl,
                                 const std::vector<Signal>& hits,
                                 const std::vector<std::vector<Signal>>& buses,
                                 unsigned width) {
  std::vector<Signal> out;
  out.reserve(width);
  for (unsigned b = 0; b < width; ++b) {
    std::vector<Signal> terms;
    terms.reserve(hits.size());
    for (std::size_t e = 0; e < hits.size(); ++e) {
      terms.push_back(nl->And(hits[e], buses[e][b]));
    }
    out.push_back(nl->OrReduce(terms));
  }
  return out;
}

}  // namespace

Netlist BuildRoLoadCheckNetlist(unsigned key_bits) {
  Netlist nl;
  const Signal readable = nl.AddInput("readable");
  const Signal writable = nl.AddInput("writable");
  const Signal user = nl.AddInput("user");
  const std::vector<Signal> page_key = InputBus(&nl, "page_key", key_bits);
  const std::vector<Signal> inst_key = InputBus(&nl, "inst_key", key_bits);

  // allow = readable & user & !writable & (page_key == inst_key)
  const Signal key_match = nl.Equal(page_key, inst_key);
  const Signal base = nl.And(readable, user);
  const Signal ro = nl.And(base, nl.Not(writable));
  nl.AddOutput("allow", nl.And(ro, key_match));
  return nl;
}

Netlist BuildTlbDatapath(const TlbDatapathConfig& config) {
  Netlist nl;

  // Lookup request.
  const std::vector<Signal> lookup_vpn =
      InputBus(&nl, "vpn", config.vpn_bits);
  const Signal is_store = nl.AddInput("is_store");
  const Signal is_fetch = nl.AddInput("is_fetch");
  Signal is_roload = -1;
  std::vector<Signal> inst_key;
  if (config.with_roload) {
    is_roload = nl.AddInput("is_roload");
    inst_key = InputBus(&nl, "inst_key", config.key_bits);
  }

  // Refill write port (index + data); the baseline's write steering for
  // tags/ppn/flags lives in the calibrated remainder, but the *key* write
  // steering below is genuinely new hardware and is modelled structurally.
  const std::vector<Signal> refill_index =
      InputBus(&nl, "refill_index", 5);  // log2(32)
  const Signal refill_we = nl.AddInput("refill_we");
  std::vector<Signal> refill_key;
  if (config.with_roload) {
    refill_key = InputBus(&nl, "refill_key", config.key_bits);
  }

  // Entry storage (flip-flops) and CAM match.
  std::vector<Signal> hits;
  std::vector<std::vector<Signal>> ppns;
  std::vector<std::vector<Signal>> flags;  // [V R W X U]
  std::vector<std::vector<Signal>> keys;
  for (unsigned e = 0; e < config.entries; ++e) {
    const std::string tag = StrFormat("e%u_vpn", e);
    const std::vector<Signal> entry_vpn =
        FlipFlopBus(&nl, tag, config.vpn_bits);
    const Signal valid = nl.AddFlipFlop(StrFormat("e%u_valid", e));
    ppns.push_back(FlipFlopBus(&nl, StrFormat("e%u_ppn", e),
                               config.ppn_bits));
    flags.push_back(FlipFlopBus(&nl, StrFormat("e%u_flags", e),
                                config.flag_bits));
    hits.push_back(nl.And(valid, nl.Equal(entry_vpn, lookup_vpn)));
    // Baseline storage FFs hold their value in this model (their write
    // steering is part of the calibrated remainder).
    nl.BindFlipFlop(valid, valid);
    for (Signal s : entry_vpn) nl.BindFlipFlop(s, s);
    for (Signal s : ppns.back()) nl.BindFlipFlop(s, s);
    for (Signal s : flags.back()) nl.BindFlipFlop(s, s);
    if (config.with_roload) {
      // Key storage with a real write port: entry-select decode from the
      // refill index drives the flip-flops' clock enables (CE is a
      // dedicated FF pin on the target FPGA, so holding costs no LUTs; the
      // decode itself does). The key data bus is shared by all entries.
      keys.push_back(FlipFlopBus(&nl, StrFormat("e%u_key", e),
                                 config.key_bits));
      std::vector<Signal> index_match;
      for (unsigned b = 0; b < 5; ++b) {
        const bool bit_set = (e >> b) & 1;
        index_match.push_back(bit_set ? refill_index[b]
                                      : nl.Not(refill_index[b]));
      }
      const Signal we_e = nl.And(refill_we, nl.AndReduce(index_match));
      nl.AddOutput(StrFormat("e%u_key_ce", e), we_e);
      for (unsigned b = 0; b < config.key_bits; ++b) {
        nl.BindFlipFlop(keys.back()[b], refill_key[b]);
      }
    }
  }

  const Signal hit = nl.OrReduce(hits);
  nl.AddOutput("hit", hit);

  const std::vector<Signal> sel_ppn =
      OneHotMuxBus(&nl, hits, ppns, config.ppn_bits);
  for (unsigned b = 0; b < config.ppn_bits; ++b) {
    nl.AddOutput(StrFormat("ppn[%u]", b), sel_ppn[b]);
  }

  const std::vector<Signal> sel_flags =
      OneHotMuxBus(&nl, hits, flags, config.flag_bits);
  // Flag order: [0]=V [1]=R [2]=W [3]=X [4]=U.
  const Signal f_r = sel_flags[1];
  const Signal f_w = sel_flags[2];
  const Signal f_x = sel_flags[3];
  const Signal f_u = sel_flags[4];

  // Conventional permission-control logic.
  const Signal load_ok = nl.And(f_r, f_u);
  const Signal store_ok = nl.And(f_w, f_u);
  const Signal fetch_ok = nl.And(f_x, f_u);
  const Signal is_load = nl.And(nl.Not(is_store), nl.Not(is_fetch));
  Signal perm_ok = nl.Or(nl.Or(nl.And(is_store, store_ok),
                               nl.And(is_fetch, fetch_ok)),
                         nl.And(is_load, load_ok));

  if (config.with_roload) {
    // The extra ROLoad logic: key select for the hit entry, comparator
    // against the instruction key, and the read-only qualification.
    std::vector<Signal> sel_key =
        OneHotMuxBus(&nl, hits, keys, config.key_bits);
    if (config.serial_check) {
      // Serial ablation: the permission result gates the comparator
      // *inputs*, so the whole key-match cone evaluates after the
      // conventional permission logic instead of next to it.
      for (Signal& bit : sel_key) bit = nl.And(bit, perm_ok);
    }
    const Signal key_match = nl.Equal(sel_key, inst_key);
    const Signal ro_ok =
        nl.And(nl.And(load_ok, nl.Not(f_w)), key_match);
    // pass = !is_roload | ro_ok; ANDed with the conventional output (in
    // the paper's parallel design both checks evaluate side by side).
    const Signal ro_pass = nl.Or(nl.Not(is_roload), ro_ok);
    perm_ok = nl.And(perm_ok, ro_pass);
  }
  nl.AddOutput("allowed", nl.And(hit, perm_ok));
  return nl;
}

Netlist BuildRoLoadDecodeDelta() {
  Netlist nl;
  const std::vector<Signal> instr = InputBus(&nl, "instr", 32);

  // ld.ro-family: major opcode 0001011 (bits 6:0), funct3 = 0xx/011.
  // Opcode pattern match: bits [1:0] = 11, [6:2] = 00010.
  const Signal b0 = instr[0];
  const Signal b1 = instr[1];
  std::vector<Signal> opcode_bits = {
      b0, b1, nl.Not(instr[2]), instr[3], nl.Not(instr[4]),
      nl.Not(instr[5]), nl.Not(instr[6])};
  const Signal is_custom0 = nl.AndReduce(opcode_bits);
  // funct3 in {000,001,010,011}: bit14 == 0.
  const Signal is_ldro32 = nl.And(is_custom0, nl.Not(instr[14]));

  // c.ld.ro: bits[1:0] = 00, funct3 (bits 15:13) = 100.
  const Signal is_c =
      nl.AndReduce({nl.Not(b0), nl.Not(b1), instr[15], nl.Not(instr[14]),
                    nl.Not(instr[13])});
  const Signal is_roload = nl.Or(is_ldro32, is_c);
  nl.AddOutput("is_roload", is_roload);

  // Key extraction: 32-bit form carries key in bits [29:20]; compressed in
  // bits {12:10, 6:5}. Mux per bit, then pipeline through two stages to
  // the memory unit (ID/EX and EX/MEM boundary registers).
  std::vector<Signal> key;
  for (unsigned b = 0; b < 10; ++b) {
    const Signal wide = instr[20 + b];
    const Signal compressed =
        b < 2 ? instr[5 + b] : (b < 5 ? instr[10 + (b - 2)] : nl.Const0());
    key.push_back(nl.Mux(is_c, wide, compressed));
  }
  // Rocket's memory pipeline: ID -> EX -> MEM plus the D-TLB request
  // register; the key and the new memory-op type ride three boundary
  // registers, and the faulting key is latched for the trap path.
  std::vector<Signal> stage1 = FlipFlopBus(&nl, "key_ex", 10);
  std::vector<Signal> stage2 = FlipFlopBus(&nl, "key_mem", 10);
  std::vector<Signal> stage3 = FlipFlopBus(&nl, "key_dtlb_req", 10);
  std::vector<Signal> fault_key = FlipFlopBus(&nl, "key_fault", 10);
  const Signal ro_ex = nl.AddFlipFlop("is_roload_ex");
  const Signal ro_mem = nl.AddFlipFlop("is_roload_mem");
  for (unsigned b = 0; b < 10; ++b) {
    nl.BindFlipFlop(stage1[b], key[b]);
    nl.BindFlipFlop(stage2[b], stage1[b]);
    nl.BindFlipFlop(stage3[b], stage2[b]);
    nl.BindFlipFlop(fault_key[b], stage3[b]);
    nl.AddOutput(StrFormat("mem_key[%u]", b), stage3[b]);
  }
  nl.BindFlipFlop(ro_ex, is_roload);
  nl.BindFlipFlop(ro_mem, ro_ex);
  nl.AddOutput("mem_is_roload", ro_mem);

  // Refill path: the PTE key field (bits 63:54) must be latched into the
  // TLB write port; 10 staging flip-flops + steering.
  const std::vector<Signal> pte_top = InputBus(&nl, "pte_key", 10);
  std::vector<Signal> refill = FlipFlopBus(&nl, "refill_key", 10);
  for (unsigned b = 0; b < 10; ++b) {
    nl.BindFlipFlop(refill[b], pte_top[b]);
    nl.AddOutput(StrFormat("tlb_write_key[%u]", b), refill[b]);
  }
  return nl;
}

TableIII ComputeTableIII(const MapperConfig& mapper) {
  TlbDatapathConfig base_config;
  base_config.with_roload = false;
  TlbDatapathConfig ro_config;
  ro_config.with_roload = true;

  const Netlist base_tlb = BuildTlbDatapath(base_config);
  const Netlist ro_tlb = BuildTlbDatapath(ro_config);
  const Netlist decode_delta = BuildRoLoadDecodeDelta();

  const MapResult base_map = MapNetlist(base_tlb, mapper);
  const MapResult ro_map = MapNetlist(ro_tlb, mapper);
  const MapResult decode_map = MapNetlist(decode_delta, mapper);

  // Calibrated remainder: the paper's baseline totals minus our
  // synthesized baseline TLB datapath.
  const unsigned rest_core_luts = kPaperCoreLuts - base_map.luts;
  const unsigned rest_core_ffs = kPaperCoreFfs - base_map.flip_flops;
  const unsigned rest_sys_luts = kPaperSystemLuts - base_map.luts;
  const unsigned rest_sys_ffs = kPaperSystemFfs - base_map.flip_flops;

  TableIII table;
  table.without_ldro.core_luts = rest_core_luts + base_map.luts;
  table.without_ldro.core_ffs = rest_core_ffs + base_map.flip_flops;
  table.without_ldro.system_luts = rest_sys_luts + base_map.luts;
  table.without_ldro.system_ffs = rest_sys_ffs + base_map.flip_flops;
  table.without_ldro.worst_slack_ns = base_map.worst_slack_ns;
  table.without_ldro.fmax_mhz = base_map.fmax_mhz;

  const unsigned extra_luts = ro_map.luts - base_map.luts + decode_map.luts;
  const unsigned extra_ffs =
      ro_map.flip_flops - base_map.flip_flops + decode_map.flip_flops;
  table.with_ldro.core_luts = table.without_ldro.core_luts + extra_luts;
  table.with_ldro.core_ffs = table.without_ldro.core_ffs + extra_ffs;
  table.with_ldro.system_luts = table.without_ldro.system_luts + extra_luts;
  table.with_ldro.system_ffs = table.without_ldro.system_ffs + extra_ffs;
  table.with_ldro.worst_slack_ns = ro_map.worst_slack_ns;
  table.with_ldro.fmax_mhz = ro_map.fmax_mhz;

  auto pct = [](unsigned base, unsigned value) {
    return (static_cast<double>(value) - static_cast<double>(base)) /
           static_cast<double>(base) * 100.0;
  };
  table.core_lut_increase_percent =
      pct(table.without_ldro.core_luts, table.with_ldro.core_luts);
  table.core_ff_increase_percent =
      pct(table.without_ldro.core_ffs, table.with_ldro.core_ffs);
  table.system_lut_increase_percent =
      pct(table.without_ldro.system_luts, table.with_ldro.system_luts);
  table.system_ff_increase_percent =
      pct(table.without_ldro.system_ffs, table.with_ldro.system_ffs);
  return table;
}

}  // namespace roload::hw
