#include "hw/netlist.h"

#include "support/strings.h"

namespace roload::hw {

Signal Netlist::AddGate(GateKind kind, std::vector<Signal> inputs,
                        std::string name) {
  for (Signal input : inputs) {
    ROLOAD_CHECK(input >= 0 &&
                 input < static_cast<Signal>(gates_.size()));
  }
  gates_.push_back(Gate{kind, std::move(inputs), std::move(name)});
  return static_cast<Signal>(gates_.size() - 1);
}

Signal Netlist::AddInput(const std::string& name) {
  const Signal signal = AddGate(GateKind::kInput, {}, name);
  inputs_.push_back(signal);
  return signal;
}

Signal Netlist::Const0() {
  if (const0_ < 0) const0_ = AddGate(GateKind::kConst0, {});
  return const0_;
}

Signal Netlist::Const1() {
  if (const1_ < 0) const1_ = AddGate(GateKind::kConst1, {});
  return const1_;
}

Signal Netlist::Not(Signal a) { return AddGate(GateKind::kNot, {a}); }
Signal Netlist::And(Signal a, Signal b) {
  return AddGate(GateKind::kAnd, {a, b});
}
Signal Netlist::Or(Signal a, Signal b) {
  return AddGate(GateKind::kOr, {a, b});
}
Signal Netlist::Xor(Signal a, Signal b) {
  return AddGate(GateKind::kXor, {a, b});
}
Signal Netlist::Xnor(Signal a, Signal b) {
  return AddGate(GateKind::kXnor, {a, b});
}
Signal Netlist::Mux(Signal sel, Signal a, Signal b) {
  return AddGate(GateKind::kMux2, {sel, a, b});
}

Signal Netlist::AndReduce(const std::vector<Signal>& signals) {
  ROLOAD_CHECK(!signals.empty());
  std::vector<Signal> level = signals;
  while (level.size() > 1) {
    std::vector<Signal> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(And(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

Signal Netlist::OrReduce(const std::vector<Signal>& signals) {
  ROLOAD_CHECK(!signals.empty());
  std::vector<Signal> level = signals;
  while (level.size() > 1) {
    std::vector<Signal> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(Or(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

Signal Netlist::Equal(const std::vector<Signal>& a,
                      const std::vector<Signal>& b) {
  ROLOAD_CHECK(a.size() == b.size() && !a.empty());
  std::vector<Signal> bits;
  bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    bits.push_back(Xnor(a[i], b[i]));
  }
  return AndReduce(bits);
}

Signal Netlist::AddFlipFlop(const std::string& name) {
  const Signal q = AddGate(GateKind::kFlipFlopQ, {}, name);
  flip_flops_.push_back(FlipFlop{q, -1});
  return q;
}

void Netlist::BindFlipFlop(Signal q, Signal d) {
  for (FlipFlop& ff : flip_flops_) {
    if (ff.q == q) {
      ff.d = d;
      return;
    }
  }
  FatalError("BindFlipFlop: unknown flip-flop");
}

void Netlist::AddOutput(const std::string& name, Signal signal) {
  outputs_.emplace_back(name, signal);
}

std::vector<bool> Netlist::EvaluateAll(const std::vector<bool>& input_values,
                                       const std::vector<bool>& ff_state) const {
  ROLOAD_CHECK(input_values.size() == inputs_.size());
  ROLOAD_CHECK(ff_state.size() == flip_flops_.size() || ff_state.empty());
  std::vector<bool> value(gates_.size(), false);
  std::size_t input_index = 0;
  std::size_t ff_index = 0;
  // Gates are created in topological order (inputs precede uses), so one
  // forward sweep suffices.
  for (std::size_t i = 0; i < gates_.size(); ++i) {
    const Gate& gate = gates_[i];
    switch (gate.kind) {
      case GateKind::kInput:
        value[i] = input_values[input_index++];
        break;
      case GateKind::kConst0:
        value[i] = false;
        break;
      case GateKind::kConst1:
        value[i] = true;
        break;
      case GateKind::kBuf:
        value[i] = value[static_cast<std::size_t>(gate.inputs[0])];
        break;
      case GateKind::kNot:
        value[i] = !value[static_cast<std::size_t>(gate.inputs[0])];
        break;
      case GateKind::kAnd:
        value[i] = value[static_cast<std::size_t>(gate.inputs[0])] &&
                   value[static_cast<std::size_t>(gate.inputs[1])];
        break;
      case GateKind::kOr:
        value[i] = value[static_cast<std::size_t>(gate.inputs[0])] ||
                   value[static_cast<std::size_t>(gate.inputs[1])];
        break;
      case GateKind::kXor:
        value[i] = value[static_cast<std::size_t>(gate.inputs[0])] !=
                   value[static_cast<std::size_t>(gate.inputs[1])];
        break;
      case GateKind::kXnor:
        value[i] = value[static_cast<std::size_t>(gate.inputs[0])] ==
                   value[static_cast<std::size_t>(gate.inputs[1])];
        break;
      case GateKind::kMux2:
        value[i] = value[static_cast<std::size_t>(gate.inputs[0])]
                       ? value[static_cast<std::size_t>(gate.inputs[2])]
                       : value[static_cast<std::size_t>(gate.inputs[1])];
        break;
      case GateKind::kFlipFlopQ:
        value[i] = ff_index < ff_state.size() && ff_state[ff_index];
        ++ff_index;
        break;
    }
  }
  return value;
}

std::vector<bool> Netlist::Evaluate(const std::vector<bool>& input_values,
                                    const std::vector<bool>& ff_state) const {
  const std::vector<bool> value = EvaluateAll(input_values, ff_state);
  std::vector<bool> result;
  result.reserve(outputs_.size());
  for (const auto& [name, signal] : outputs_) {
    result.push_back(value[static_cast<std::size_t>(signal)]);
  }
  return result;
}

std::vector<bool> Netlist::NextState(const std::vector<bool>& input_values,
                                     const std::vector<bool>& ff_state) const {
  const std::vector<bool> value = EvaluateAll(input_values, ff_state);
  std::vector<bool> next;
  next.reserve(flip_flops_.size());
  for (const FlipFlop& ff : flip_flops_) {
    next.push_back(ff.d >= 0 ? value[static_cast<std::size_t>(ff.d)] : false);
  }
  return next;
}

std::vector<Signal> InputBus(Netlist* netlist, const std::string& name,
                             unsigned width) {
  std::vector<Signal> bus;
  bus.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    bus.push_back(netlist->AddInput(StrFormat("%s[%u]", name.c_str(), i)));
  }
  return bus;
}

std::vector<Signal> FlipFlopBus(Netlist* netlist, const std::string& name,
                                unsigned width) {
  std::vector<Signal> bus;
  bus.reserve(width);
  for (unsigned i = 0; i < width; ++i) {
    bus.push_back(
        netlist->AddFlipFlop(StrFormat("%s[%u]", name.c_str(), i)));
  }
  return bus;
}

}  // namespace roload::hw
