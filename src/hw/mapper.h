// Technology mapper + static timing analyzer: maps a gate netlist onto
// k-input LUTs (k = 6 for the Kintex-7 target) with a greedy cone-packing
// heuristic and reports LUT count, FF count, logic depth, worst setup
// slack and Fmax against the paper's 125 MHz synthesis target.
#pragma once

#include <cstdint>

#include "hw/netlist.h"

namespace roload::hw {

struct MapperConfig {
  unsigned lut_inputs = 6;  // Kintex-7 fracturable LUT6
  // Timing model, calibrated so the baseline Rocket-core path matches the
  // published numbers (F_target = 125 MHz, slack 0.119 ns).
  double ns_per_lut_level = 0.551;  // LUT + local routing
  double ns_clk_to_q_plus_setup = 0.62;
  double target_mhz = 125.0;
  // Depth of the longest path elsewhere in the core (the TLB check is ANDed
  // into an existing permission path; the core's global critical path has
  // this many levels when the local logic is shallower).
  unsigned core_floor_levels = 13;
  // Placement/congestion term: bigger netlists route slightly worse. This
  // reproduces the sub-level Fmax deltas real tools report when logic is
  // added off the critical path.
  double ns_routing_per_lut = 9.2e-5;
};

struct MapResult {
  unsigned luts = 0;
  unsigned flip_flops = 0;
  unsigned depth_levels = 0;     // LUT levels on the longest path
  double critical_path_ns = 0.0;
  double worst_slack_ns = 0.0;   // vs 1/target_mhz
  double fmax_mhz = 0.0;
};

// Maps the netlist and runs STA.
MapResult MapNetlist(const Netlist& netlist, const MapperConfig& config = {});

}  // namespace roload::hw
