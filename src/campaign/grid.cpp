#include "campaign/grid.h"

#include <cstdlib>
#include <string>

#include "campaign/env.h"
#include "support/strings.h"

namespace roload::campaign {
namespace {

Status ParseWorkloads(std::string_view value, double scale,
                      CampaignSpec* spec) {
  spec->workloads.clear();
  if (value == "all") {
    spec->workloads = workloads::SpecCint2006Suite(scale);
    return Status::Ok();
  }
  if (value == "cpp") {
    spec->workloads = workloads::SpecCppSubset(scale);
    return Status::Ok();
  }
  const auto suite = workloads::SpecCint2006Suite(scale);
  for (std::string_view name : SplitString(value, ',')) {
    bool found = false;
    if (name == "rpc_server") {
      // The SMP traffic workload: `scale` multiplies the request count.
      const double requests = 600.0 * scale;
      spec->workloads.push_back(workloads::RpcServerWorkload(
          requests < 64 ? 64 : static_cast<std::uint64_t>(requests)));
      found = true;
    }
    for (const workloads::WorkloadSpec& candidate : suite) {
      if (found) break;
      if (candidate.name == name) {
        spec->workloads.push_back(candidate);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("unknown workload: " +
                                     std::string(name));
    }
  }
  return Status::Ok();
}

Status ParseDefenses(std::string_view value, CampaignSpec* spec) {
  spec->configs.clear();
  for (std::string_view name : SplitString(value, ',')) {
    core::Defense defense;
    if (!ParseDefense(name, &defense)) {
      return Status::InvalidArgument("unknown defense: " + std::string(name));
    }
    spec->configs.push_back(ForDefense(defense));
  }
  return Status::Ok();
}

Status ParseVariants(std::string_view value, CampaignSpec* spec) {
  spec->variants.clear();
  for (std::string_view name : SplitString(value, ',')) {
    core::SystemVariant variant;
    if (!ParseVariant(name, &variant)) {
      return Status::InvalidArgument("unknown variant: " + std::string(name));
    }
    spec->variants.push_back(variant);
  }
  return Status::Ok();
}

}  // namespace

Status ParseGrid(std::string_view grid, double default_scale,
                 CampaignSpec* spec) {
  double scale = default_scale;
  // First pass: scale, because the workload axis is generated at a scale.
  for (std::string_view field : SplitString(grid, ';')) {
    if (!StartsWith(field, "scale=")) continue;
    const auto parsed = ParseScale(field.substr(6));
    if (!parsed) {
      return Status::InvalidArgument("bad scale: " + std::string(field));
    }
    scale = *parsed;
  }

  if (spec->workloads.empty()) {
    spec->workloads = workloads::SpecCint2006Suite(scale);
  }
  if (spec->configs.empty()) {
    spec->configs = {ForDefense(core::Defense::kNone)};
  }

  for (std::string_view field : SplitString(grid, ';')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("grid field is not key=value: " +
                                     std::string(field));
    }
    const std::string_view key = field.substr(0, eq);
    const std::string_view value = field.substr(eq + 1);
    if (key == "workloads") {
      ROLOAD_RETURN_IF_ERROR(ParseWorkloads(value, scale, spec));
    } else if (key == "defenses") {
      ROLOAD_RETURN_IF_ERROR(ParseDefenses(value, spec));
    } else if (key == "variants") {
      ROLOAD_RETURN_IF_ERROR(ParseVariants(value, spec));
    } else if (key == "scale") {
      // consumed by the first pass
    } else if (key == "seed") {
      const std::string copy(value);
      char* end = nullptr;
      spec->seed = std::strtoull(copy.c_str(), &end, 0);
      if (copy.empty() || end != copy.c_str() + copy.size()) {
        return Status::InvalidArgument("bad seed: " + std::string(field));
      }
    } else if (key == "max-instructions") {
      const std::string copy(value);
      char* end = nullptr;
      spec->max_instructions = std::strtoull(copy.c_str(), &end, 0);
      if (copy.empty() || end != copy.c_str() + copy.size() ||
          spec->max_instructions == 0) {
        return Status::InvalidArgument("bad max-instructions: " +
                                       std::string(field));
      }
    } else if (key == "harts") {
      spec->harts.clear();
      for (std::string_view entry : SplitString(value, ',')) {
        const std::string copy(entry);
        char* end = nullptr;
        const unsigned long harts = std::strtoul(copy.c_str(), &end, 0);
        if (copy.empty() || end != copy.c_str() + copy.size() ||
            harts == 0 || harts > 64) {
          return Status::InvalidArgument("bad harts: " + std::string(field));
        }
        spec->harts.push_back(static_cast<unsigned>(harts));
      }
    } else if (key == "exec") {
      spec->execs.clear();
      for (std::string_view entry : SplitString(value, ',')) {
        const auto tier = cpu::ParseExecTier(entry);
        if (!tier) {
          return Status::InvalidArgument("bad exec tier: " +
                                         std::string(field));
        }
        spec->execs.push_back(*tier);
      }
      if (spec->execs.empty()) {
        return Status::InvalidArgument("empty exec axis: " +
                                       std::string(field));
      }
    } else if (key == "profile") {
      const auto parsed = ParseSwitch(value);
      if (!parsed) {
        return Status::InvalidArgument("bad profile switch: " +
                                       std::string(field));
      }
      spec->profile = *parsed;
    } else {
      return Status::InvalidArgument("unknown grid key: " + std::string(key));
    }
  }
  return Status::Ok();
}

}  // namespace roload::campaign
