#include "campaign/runner.h"

#include "smp/machine.h"

namespace roload::campaign {
namespace {

RunOutcome ExecuteOne(const RunSpec& spec, std::size_t index) {
  RunOutcome outcome;
  outcome.name = spec.name;
  outcome.index = index;
  outcome.build_only = spec.build_only;

  const ir::Module module = workloads::Generate(spec.workload);
  auto build = core::Build(module, spec.build);
  if (!build.ok()) {
    outcome.status = build.status();
    return outcome;
  }
  outcome.build.image_bytes = build->image_bytes;
  outcome.build.code_bytes = build->code_bytes;
  outcome.build.roload_instructions = build->codegen.roload_instructions;
  outcome.build.extra_addi_for_roload =
      build->codegen.extra_addi_for_roload;
  outcome.build.cfi_id_words = build->codegen.cfi_id_words;
  if (spec.build_only) return outcome;

  // harts == 1 stays on the legacy single-hart path — pre-SMP grids are
  // bit-identical by construction, not by luck.
  auto metrics =
      spec.harts > 1
          ? smp::RunBuildSmp(*build, spec.variant, spec.harts,
                             spec.max_instructions, spec.trace, spec.exec)
          : core::RunBuild(*build, spec.variant, spec.max_instructions,
                           spec.trace, spec.exec);
  if (!metrics.ok()) {
    outcome.status = metrics.status();
    return outcome;
  }
  outcome.metrics = *std::move(metrics);
  return outcome;
}

}  // namespace

std::string RunOutcome::FailureText() const {
  if (!status.ok()) return status.ToString();
  if (!build_only && !metrics.completed) {
    if (metrics.roload_violation) return "killed: ROLoad violation";
    return "did not complete (killed or instruction limit)";
  }
  return "ok";
}

std::vector<RunOutcome> RunCampaign(const std::vector<RunSpec>& specs,
                                    const RunnerOptions& options) {
  return ParallelMap<RunOutcome>(
      specs.size(), options.jobs,
      [&specs](std::size_t i) { return ExecuteOne(specs[i], i); });
}

CampaignResult::CampaignResult(CampaignSpec spec,
                               std::vector<RunOutcome> outcomes,
                               unsigned jobs)
    : spec_(std::move(spec)), outcomes_(std::move(outcomes)), jobs_(jobs) {
  for (const RunOutcome& outcome : outcomes_) {
    if (!outcome.ok() || outcome.build_only) continue;
    auto snapshot = outcome.metrics.counters;
    for (const auto& [bucket, cycles] : outcome.metrics.profile) {
      snapshot.emplace_back("profile." + bucket, cycles);
    }
    merger_.Add(outcome.name, snapshot);
  }
}

const RunOutcome* CampaignResult::Find(std::string_view name) const {
  for (const RunOutcome& outcome : outcomes_) {
    if (outcome.name == name) return &outcome;
  }
  return nullptr;
}

const RunOutcome* CampaignResult::Find(std::string_view workload,
                                       std::string_view config,
                                       core::SystemVariant variant) const {
  const std::string name = std::string(workload) + "/" + std::string(config) +
                           "/" + std::string(VariantName(variant));
  return Find(name);
}

std::size_t CampaignResult::faults() const {
  std::size_t faults = 0;
  for (const RunOutcome& outcome : outcomes_) {
    if (!outcome.ok()) ++faults;
  }
  return faults;
}

void CampaignResult::FillSession(trace::TelemetrySession* session) const {
  session->set_schema("roload.campaign.v1");
  session->Record("campaign.jobs", static_cast<std::uint64_t>(jobs_));
  session->Record("campaign.runs",
                  static_cast<std::uint64_t>(outcomes_.size()));
  session->Record("campaign.faults", static_cast<std::uint64_t>(faults()));
  for (const RunOutcome& outcome : outcomes_) {
    const std::string prefix = "run." + outcome.name;
    session->Record(prefix + ".ok",
                    static_cast<std::uint64_t>(outcome.ok() ? 1 : 0));
    if (!outcome.ok()) {
      session->Record(prefix + ".error", outcome.FailureText());
      continue;
    }
    session->Record(prefix + ".image_bytes", outcome.build.image_bytes);
    if (outcome.build_only) {
      session->Record(prefix + ".code_bytes", outcome.build.code_bytes);
      continue;
    }
    session->Record(prefix + ".cycles", outcome.metrics.cycles);
    session->Record(prefix + ".instructions", outcome.metrics.instructions);
    session->Record(prefix + ".roload_loads", outcome.metrics.roload_loads);
    session->Record(prefix + ".peak_mem_kib", outcome.metrics.peak_mem_kib);
  }
  session->set_merger(&merger_);
}

CampaignResult Run(const CampaignSpec& spec, const RunnerOptions& options) {
  std::vector<RunSpec> runs = Expand(spec);
  const unsigned jobs = ResolveJobs(options.jobs, runs.size());
  std::vector<RunOutcome> outcomes = RunCampaign(runs, options);
  return CampaignResult(spec, std::move(outcomes), jobs);
}

}  // namespace roload::campaign
