// Deterministic parallel map: evaluates fn(0) .. fn(count-1) on up to
// `jobs` threads (0 = one per hardware thread); results land in index
// order regardless of completion order. The building block under
// campaign::RunCampaign, and header-only with no campaign (or core)
// dependencies so lower layers — the per-function binary verifier in
// src/verify — can fan out over the same pool discipline without
// linking roload_campaign (which links core, which links verify).
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

namespace roload::campaign {

inline unsigned ResolveJobs(unsigned jobs, std::size_t count) {
  if (jobs == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    jobs = hw > 0 ? hw : 1;
  }
  if (count < jobs) jobs = static_cast<unsigned>(count);
  return jobs > 0 ? jobs : 1;
}

template <typename T, typename Fn>
std::vector<T> ParallelMap(std::size_t count, unsigned jobs, Fn&& fn) {
  std::vector<T> results(count);
  const unsigned workers = ResolveJobs(jobs, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) break;
      results[i] = fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  return results;
}

}  // namespace roload::campaign
