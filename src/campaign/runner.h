// The campaign executor: runs an expanded grid of independent
// core::Systems across a host thread pool. Simulated results are
// bit-identical to serial execution — every run builds its own module,
// image and System, and the simulator holds no global mutable state —
// so parallelism only buys wall-clock (the differential test in
// tests/test_campaign.cpp pins this down). One faulting run reports its
// status in its outcome slot instead of aborting the grid.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/spec.h"
#include "trace/merge.h"
#include "trace/session.h"

namespace roload::campaign {

// Deterministic parallel map: evaluates fn(0) .. fn(count-1) on up to
// `jobs` threads (0 = one per hardware thread); results land in index
// order regardless of completion order. The building block under
// RunCampaign, exported for grids whose cells are not plain
// workload × defense runs (the attack-injection matrix).
unsigned ResolveJobs(unsigned jobs, std::size_t count);

template <typename T, typename Fn>
std::vector<T> ParallelMap(std::size_t count, unsigned jobs, Fn&& fn) {
  std::vector<T> results(count);
  const unsigned workers = ResolveJobs(jobs, count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) results[i] = fn(i);
    return results;
  }
  std::atomic<std::size_t> next{0};
  auto worker = [&]() {
    while (true) {
      const std::size_t i = next.fetch_add(1);
      if (i >= count) break;
      results[i] = fn(i);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (unsigned t = 0; t < workers; ++t) threads.emplace_back(worker);
  for (std::thread& thread : threads) thread.join();
  return results;
}

// Static instrumentation/code-size numbers of one build, available even
// for build-only runs.
struct BuildStats {
  std::uint64_t image_bytes = 0;
  std::uint64_t code_bytes = 0;
  std::uint64_t roload_instructions = 0;
  std::uint64_t extra_addi_for_roload = 0;
  std::uint64_t cfi_id_words = 0;
};

struct RunOutcome {
  std::string name;
  std::size_t index = 0;  // position in the expanded grid
  // Build or load error; Ok for runs that executed (see metrics.completed
  // for whether the guest exited normally).
  Status status = Status::Ok();
  bool build_only = false;
  BuildStats build;
  core::RunMetrics metrics;  // default-constructed for build-only runs

  // A run counts as clean when it built and (unless build-only) the guest
  // ran to a normal exit.
  bool ok() const { return status.ok() && (build_only || metrics.completed); }
  // One-line failure description for table footers and logs.
  std::string FailureText() const;
};

struct RunnerOptions {
  unsigned jobs = 0;  // 0 = one worker per hardware thread
};

// Executes every spec, in parallel up to `options.jobs`, returning
// outcomes in spec order. Never aborts on a faulting run.
std::vector<RunOutcome> RunCampaign(const std::vector<RunSpec>& specs,
                                    const RunnerOptions& options = {});

// A finished campaign: the outcomes plus the cross-run counter merge and
// the roload.campaign.v1 telemetry. Keeps the spec for labelling.
class CampaignResult {
 public:
  CampaignResult(CampaignSpec spec, std::vector<RunOutcome> outcomes,
                 unsigned jobs);

  const CampaignSpec& spec() const { return spec_; }
  const std::vector<RunOutcome>& outcomes() const { return outcomes_; }
  unsigned jobs() const { return jobs_; }

  const RunOutcome* Find(std::string_view name) const;
  const RunOutcome* Find(std::string_view workload, std::string_view config,
                         core::SystemVariant variant =
                             core::SystemVariant::kFullRoload) const;

  std::size_t faults() const;
  bool all_ok() const { return faults() == 0; }

  // Counters of every clean run (plus its cycle-attribution buckets as
  // "profile.<bucket>" when profiled), merged across the campaign.
  const trace::CounterMerger& merger() const { return merger_; }

  // Campaign-level telemetry: switches `session` to roload.campaign.v1,
  // records per-run rows (run.<name>.cycles/instructions/...) and the
  // fault count, and attaches the merger (this CampaignResult must
  // outlive the session's ToJson/WriteJson calls).
  void FillSession(trace::TelemetrySession* session) const;

 private:
  CampaignSpec spec_;
  std::vector<RunOutcome> outcomes_;
  unsigned jobs_ = 1;
  trace::CounterMerger merger_;
};

// Expand + RunCampaign + merge in one call — what the benches use.
CampaignResult Run(const CampaignSpec& spec, const RunnerOptions& options = {});

}  // namespace roload::campaign
