// The campaign executor: runs an expanded grid of independent
// core::Systems across a host thread pool. Simulated results are
// bit-identical to serial execution — every run builds its own module,
// image and System, and the simulator holds no global mutable state —
// so parallelism only buys wall-clock (the differential test in
// tests/test_campaign.cpp pins this down). One faulting run reports its
// status in its outcome slot instead of aborting the grid.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

// ResolveJobs + ParallelMap live in campaign/parallel.h (header-only, no
// campaign deps) so non-bench callers — the parallel per-function binary
// verifier — can reuse the pool discipline without linking this library.
#include "campaign/parallel.h"
#include "campaign/spec.h"
#include "trace/merge.h"
#include "trace/session.h"

namespace roload::campaign {

// Static instrumentation/code-size numbers of one build, available even
// for build-only runs.
struct BuildStats {
  std::uint64_t image_bytes = 0;
  std::uint64_t code_bytes = 0;
  std::uint64_t roload_instructions = 0;
  std::uint64_t extra_addi_for_roload = 0;
  std::uint64_t cfi_id_words = 0;
};

struct RunOutcome {
  std::string name;
  std::size_t index = 0;  // position in the expanded grid
  // Build or load error; Ok for runs that executed (see metrics.completed
  // for whether the guest exited normally).
  Status status = Status::Ok();
  bool build_only = false;
  BuildStats build;
  core::RunMetrics metrics;  // default-constructed for build-only runs

  // A run counts as clean when it built and (unless build-only) the guest
  // ran to a normal exit.
  bool ok() const { return status.ok() && (build_only || metrics.completed); }
  // One-line failure description for table footers and logs.
  std::string FailureText() const;
};

struct RunnerOptions {
  unsigned jobs = 0;  // 0 = one worker per hardware thread
};

// Executes every spec, in parallel up to `options.jobs`, returning
// outcomes in spec order. Never aborts on a faulting run.
std::vector<RunOutcome> RunCampaign(const std::vector<RunSpec>& specs,
                                    const RunnerOptions& options = {});

// A finished campaign: the outcomes plus the cross-run counter merge and
// the roload.campaign.v1 telemetry. Keeps the spec for labelling.
class CampaignResult {
 public:
  CampaignResult(CampaignSpec spec, std::vector<RunOutcome> outcomes,
                 unsigned jobs);

  const CampaignSpec& spec() const { return spec_; }
  const std::vector<RunOutcome>& outcomes() const { return outcomes_; }
  unsigned jobs() const { return jobs_; }

  const RunOutcome* Find(std::string_view name) const;
  const RunOutcome* Find(std::string_view workload, std::string_view config,
                         core::SystemVariant variant =
                             core::SystemVariant::kFullRoload) const;

  std::size_t faults() const;
  bool all_ok() const { return faults() == 0; }

  // Counters of every clean run (plus its cycle-attribution buckets as
  // "profile.<bucket>" when profiled), merged across the campaign.
  const trace::CounterMerger& merger() const { return merger_; }

  // Campaign-level telemetry: switches `session` to roload.campaign.v1,
  // records per-run rows (run.<name>.cycles/instructions/...) and the
  // fault count, and attaches the merger (this CampaignResult must
  // outlive the session's ToJson/WriteJson calls).
  void FillSession(trace::TelemetrySession* session) const;

 private:
  CampaignSpec spec_;
  std::vector<RunOutcome> outcomes_;
  unsigned jobs_ = 1;
  trace::CounterMerger merger_;
};

// Expand + RunCampaign + merge in one call — what the benches use.
CampaignResult Run(const CampaignSpec& spec, const RunnerOptions& options = {});

}  // namespace roload::campaign
