// Declarative run grids. Every figure/ablation bench used to hand-roll
// the same nested loop — for each workload, for each defense (× variant),
// build and run one core::System — around bench_util.h. A CampaignSpec
// states that grid once (workload × build config × system variant ×
// scale × trace config); Expand() turns it into the flat, deterministic
// run matrix the executor (runner.h) walks, and the benches shrink to a
// spec plus a table formatter.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/toolchain.h"
#include "trace/hub.h"
#include "workloads/spec_like.h"

namespace roload::campaign {

// Short CLI/table names for the three system variants of Section V-B:
// "baseline", "proc", "full". ParseVariant accepts exactly these.
std::string_view VariantName(core::SystemVariant variant);
bool ParseVariant(std::string_view name, core::SystemVariant* variant);

// Defense names as printed by core::DefenseName (case-sensitive:
// "none", "VCall", "VTint", "ICall", "CFI").
bool ParseDefense(std::string_view name, core::Defense* defense);

// One column of the grid: a labelled build configuration. Usually just a
// defense, but sweeps can vary any BuildOptions knob under its own label
// (ablation_keys labels VCall key-group counts "VCall/g4", ...).
struct RunConfig {
  std::string label;
  core::BuildOptions build;
  // Build-only configs stop after core::Build (code-size/instrumentation
  // sweeps like ablation_addi); the outcome carries BuildStats only.
  bool build_only = false;
};

// The config for a plain defense, labelled with its DefenseName.
RunConfig ForDefense(core::Defense defense);

// One fully-resolved run of the matrix.
struct RunSpec {
  std::string name;  // "<workload>/<config label>/<variant>", unique
  workloads::WorkloadSpec workload;
  core::BuildOptions build;
  core::SystemVariant variant = core::SystemVariant::kFullRoload;
  bool build_only = false;
  std::uint64_t max_instructions = 1ull << 34;
  // Hart count for the run. 1 executes on the legacy single-hart System
  // (bit-identical to every pre-SMP grid); >= 2 executes on an
  // smp::Machine and appends "/h<N>" to the run name.
  unsigned harts = 1;
  // Host execute tier for the run. All three tiers retire bit-identical
  // cycles and counters, so this axis only changes host speed — it exists
  // so grids can cross-check the tiers against each other and so heavy
  // sweeps can opt into translation.
  cpu::ExecTier exec = cpu::ExecTier::kFast;
  trace::TraceConfig trace;
};

// The declarative grid. Expansion order is workload-major, then config,
// then variant — the order the old serial bench loops used, so tables
// and telemetry keys keep their historical order.
struct CampaignSpec {
  std::string name = "campaign";
  std::vector<workloads::WorkloadSpec> workloads;
  std::vector<RunConfig> configs;
  std::vector<core::SystemVariant> variants = {
      core::SystemVariant::kFullRoload};
  bool profile = false;
  std::uint64_t max_instructions = 1ull << 34;
  // The hart-count axis (innermost). The default {1} leaves every run on
  // the single-hart path and every run name unchanged; entries >= 2 run
  // on an SMP machine and are named "<...>/h<N>".
  std::vector<unsigned> harts = {1};
  // The execute-tier axis (innermost, below harts). The default {kFast}
  // keeps every run on the fast-path tier with unchanged names; any other
  // set appends "/<tier name>" to each run name so interp/fast/translated
  // cells of the same cross-check grid stay distinguishable.
  std::vector<cpu::ExecTier> execs = {cpu::ExecTier::kFast};
  // 0 keeps each workload's own seed — the default, under which the
  // expanded grid reproduces the committed figure tables bit-identically.
  // Nonzero derives a distinct per-run workload seed through
  // support::DeriveSeed(seed, run_index) for decorrelated sweeps.
  std::uint64_t seed = 0;
};

// Expands the grid into the flat run matrix (workload-major). Run names
// are "<workload>/<config label>/<variant short name>".
std::vector<RunSpec> Expand(const CampaignSpec& spec);

}  // namespace roload::campaign
