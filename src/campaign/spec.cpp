#include "campaign/spec.h"

#include "support/rng.h"

namespace roload::campaign {

std::string_view VariantName(core::SystemVariant variant) {
  switch (variant) {
    case core::SystemVariant::kBaseline:
      return "baseline";
    case core::SystemVariant::kProcessorModified:
      return "proc";
    case core::SystemVariant::kFullRoload:
      return "full";
  }
  return "?";
}

bool ParseVariant(std::string_view name, core::SystemVariant* variant) {
  for (core::SystemVariant candidate :
       {core::SystemVariant::kBaseline, core::SystemVariant::kProcessorModified,
        core::SystemVariant::kFullRoload}) {
    if (name == VariantName(candidate)) {
      *variant = candidate;
      return true;
    }
  }
  return false;
}

bool ParseDefense(std::string_view name, core::Defense* defense) {
  for (core::Defense candidate :
       {core::Defense::kNone, core::Defense::kVCall, core::Defense::kVTint,
        core::Defense::kICall, core::Defense::kClassicCfi}) {
    if (name == core::DefenseName(candidate)) {
      *defense = candidate;
      return true;
    }
  }
  return false;
}

RunConfig ForDefense(core::Defense defense) {
  RunConfig config;
  config.label = std::string(core::DefenseName(defense));
  config.build.defense = defense;
  return config;
}

std::vector<RunSpec> Expand(const CampaignSpec& spec) {
  // Any non-default tier axis grows the "/<tier>" suffix on every cell,
  // keeping same-grid tiers distinguishable while the default {kFast}
  // reproduces the historical names exactly.
  const bool name_execs =
      spec.execs.size() > 1 ||
      (spec.execs.size() == 1 && spec.execs[0] != cpu::ExecTier::kFast);
  std::vector<RunSpec> runs;
  runs.reserve(spec.workloads.size() * spec.configs.size() *
               spec.variants.size() * spec.harts.size() * spec.execs.size());
  for (const workloads::WorkloadSpec& workload : spec.workloads) {
    for (const RunConfig& config : spec.configs) {
      for (core::SystemVariant variant : spec.variants) {
        for (unsigned harts : spec.harts) {
          for (cpu::ExecTier exec : spec.execs) {
            RunSpec run;
            run.name = workload.name + "/" + config.label + "/" +
                       std::string(VariantName(variant));
            // Single-hart runs keep their historical names (the default
            // {1} axis expands to exactly the pre-SMP grid); only true
            // SMP cells grow the "/h<N>" suffix.
            if (harts != 1) run.name += "/h" + std::to_string(harts);
            if (name_execs) {
              run.name += "/" + std::string(cpu::ExecTierName(exec));
            }
            run.workload = workload;
            run.build = config.build;
            run.variant = variant;
            run.build_only = config.build_only;
            run.max_instructions = spec.max_instructions;
            run.harts = harts;
            run.exec = exec;
            run.trace.profile = spec.profile;
            if (spec.seed != 0) {
              run.workload.seed = DeriveSeed(spec.seed, runs.size());
            }
            runs.push_back(std::move(run));
          }
        }
      }
    }
  }
  return runs;
}

}  // namespace roload::campaign
