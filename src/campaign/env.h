// Strict parsing of the ROLOAD_BENCH_* environment knobs shared by the
// bench binaries and rcampaign. The old std::atof path silently accepted
// garbage — ROLOAD_BENCH_SCALE=fast parsed to 0, which fell through to
// the default with no hint the request was ignored. These parsers check
// the strtod/strtoul end pointer, and the *FromEnv wrappers warn on
// stderr whenever a set value is rejected.
#pragma once

#include <optional>
#include <string_view>

namespace roload::campaign {

// A finite, strictly positive double ("0.5", "2"), nullopt otherwise
// (garbage, trailing junk, zero, negatives, inf/nan).
std::optional<double> ParseScale(std::string_view text);

// Boolean switch: 1/true/on/yes and 0/false/off/no (lowercase); the
// empty string is false (an exported-but-empty variable). Anything else
// is nullopt.
std::optional<bool> ParseSwitch(std::string_view text);

// A decimal integer job count (0 means auto: one worker per hardware
// thread), nullopt on garbage or trailing junk.
std::optional<unsigned> ParseJobs(std::string_view text);

// ROLOAD_BENCH_SCALE: workload-scale multiplier; warns and returns
// `default_scale` when set to a rejected value.
double ScaleFromEnv(double default_scale);

// ROLOAD_BENCH_PROFILE: attach the cycle-attribution profiler; warns and
// returns false on a rejected value.
bool ProfileFromEnv();

// ROLOAD_BENCH_JOBS: campaign worker count; 0 picks one worker per
// hardware thread. Warns and returns `default_jobs` on rejection.
unsigned JobsFromEnv(unsigned default_jobs = 0);

}  // namespace roload::campaign
