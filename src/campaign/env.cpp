#include "campaign/env.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace roload::campaign {
namespace {

void WarnRejected(const char* variable, const char* value,
                  const char* expected) {
  std::fprintf(stderr,
               "warning: ignoring %s=\"%s\" (%s); using the default\n",
               variable, value, expected);
}

}  // namespace

std::optional<double> ParseScale(std::string_view text) {
  const std::string copy(text);  // strtod needs NUL termination
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) return std::nullopt;
  if (!std::isfinite(value) || value <= 0) return std::nullopt;
  return value;
}

std::optional<bool> ParseSwitch(std::string_view text) {
  if (text.empty() || text == "0" || text == "false" || text == "off" ||
      text == "no") {
    return false;
  }
  if (text == "1" || text == "true" || text == "on" || text == "yes") {
    return true;
  }
  return std::nullopt;
}

std::optional<unsigned> ParseJobs(std::string_view text) {
  const std::string copy(text);
  char* end = nullptr;
  const unsigned long value = std::strtoul(copy.c_str(), &end, 10);
  if (end != copy.c_str() + copy.size() || copy.empty()) return std::nullopt;
  if (value > 1024) return std::nullopt;  // nonsense thread counts
  return static_cast<unsigned>(value);
}

double ScaleFromEnv(double default_scale) {
  const char* env = std::getenv("ROLOAD_BENCH_SCALE");
  if (env == nullptr) return default_scale;
  if (auto scale = ParseScale(env)) return *scale;
  WarnRejected("ROLOAD_BENCH_SCALE", env, "expected a positive number");
  return default_scale;
}

bool ProfileFromEnv() {
  const char* env = std::getenv("ROLOAD_BENCH_PROFILE");
  if (env == nullptr) return false;
  if (auto enabled = ParseSwitch(env)) return *enabled;
  WarnRejected("ROLOAD_BENCH_PROFILE", env, "expected 0/1/true/false");
  return false;
}

unsigned JobsFromEnv(unsigned default_jobs) {
  const char* env = std::getenv("ROLOAD_BENCH_JOBS");
  if (env == nullptr) return default_jobs;
  if (auto jobs = ParseJobs(env)) return *jobs;
  WarnRejected("ROLOAD_BENCH_JOBS", env, "expected a job count (0 = auto)");
  return default_jobs;
}

}  // namespace roload::campaign
