// Text grid syntax, so arbitrary sweeps no longer require writing a new
// bench binary:
//
//   workloads=omnetpp_like,astar_like;defenses=none,VCall;variants=full,proc
//   workloads=cpp;defenses=none,ICall,CFI;scale=0.2;seed=7
//
// Keys (all optional; semicolon-separated, comma-separated values):
//   workloads         suite benchmark names, or "cpp" (the C++ subset),
//                     "all" (the full CINT2006-like suite; the default),
//                     or "rpc_server" (the SMP traffic workload)
//   defenses          none | VCall | VTint | ICall | CFI
//   variants          baseline | proc | full
//   scale             positive workload-scale multiplier (overrides the
//                     scale passed to ParseGrid)
//   seed              nonzero: derive per-run workload seeds (see
//                     CampaignSpec::seed)
//   max-instructions  per-run instruction budget
//   harts             hart counts (e.g. "1,2,4"); cells with > 1 hart run
//                     on an smp::Machine and are named "<...>/h<N>"
//   exec              host execute tiers: interp | fast | translated
//                     (e.g. "exec=interp,fast,translated" cross-checks
//                     all three); any non-default axis appends "/<tier>"
//                     to the run names. Tiers never change cycles or
//                     counters — only host speed.
//   profile           0/1: attach the cycle-attribution profiler
#pragma once

#include <string_view>

#include "campaign/spec.h"
#include "support/status.h"

namespace roload::campaign {

// Parses `grid` into `spec` (overwriting the axes the grid names;
// workloads default to the full suite at `default_scale`). Unknown keys,
// unknown workload/defense/variant names and malformed numbers are
// InvalidArgument errors naming the offending token.
Status ParseGrid(std::string_view grid, double default_scale,
                 CampaignSpec* spec);

}  // namespace roload::campaign
