#include "kernel/address_space.h"

#include "support/bits.h"

namespace roload::kernel {

StatusOr<std::uint64_t> FrameAllocator::Allocate() {
  std::uint64_t ppn;
  if (!free_list_.empty()) {
    ppn = free_list_.back();
    free_list_.pop_back();
  } else {
    if (next_ >= end_) return Status::OutOfRange("out of physical frames");
    ppn = next_++;
  }
  ++allocated_;
  return ppn;
}

AddressSpace::AddressSpace(mem::PhysMemory* memory, FrameAllocator* frames)
    : memory_(memory), frames_(frames) {
  auto root = frames_->Allocate();
  ROLOAD_CHECK(root.ok());
  root_ppn_ = *root;
  memory_->Fill(root_ppn_ << mem::kPageShift, mem::kPageSize, 0);
}

std::uint64_t AddressSpace::PteFlags(const PageProt& prot) {
  std::uint64_t flags = mem::kPteValid | mem::kPteUser | mem::kPteAccessed |
                        mem::kPteDirty;
  if (prot.read) flags |= mem::kPteRead;
  if (prot.write) flags |= mem::kPteWrite;
  if (prot.exec) flags |= mem::kPteExec;
  return flags;
}

StatusOr<std::uint64_t> AddressSpace::LeafSlot(std::uint64_t vaddr,
                                               bool create) {
  if (!mem::IsCanonicalSv39(vaddr)) {
    return Status::InvalidArgument("non-canonical virtual address");
  }
  std::uint64_t table_ppn = root_ppn_;
  for (int level = mem::kSv39Levels - 1; level > 0; --level) {
    const unsigned shift =
        mem::kPageShift + mem::kVpnBits * static_cast<unsigned>(level);
    const std::uint64_t vpn =
        ExtractBits(vaddr, shift + mem::kVpnBits - 1, shift);
    const std::uint64_t slot = (table_ppn << mem::kPageShift) + vpn * 8;
    mem::Pte pte(memory_->Read(slot, 8));
    if (!pte.valid()) {
      if (!create) return Status::NotFound("unmapped intermediate table");
      auto frame = frames_->Allocate();
      if (!frame.ok()) return frame.status();
      memory_->Fill(*frame << mem::kPageShift, mem::kPageSize, 0);
      pte = mem::Pte::MakeNonLeaf(*frame);
      memory_->Write(slot, 8, pte.raw());
    } else if (pte.leaf()) {
      return Status::FailedPrecondition("superpage in the way");
    }
    table_ppn = pte.ppn();
  }
  const std::uint64_t vpn0 =
      ExtractBits(vaddr, mem::kPageShift + mem::kVpnBits - 1, mem::kPageShift);
  return (table_ppn << mem::kPageShift) + vpn0 * 8;
}

Status AddressSpace::Map(std::uint64_t vaddr, std::uint64_t page_count,
                         const PageProt& prot) {
  if ((vaddr & (mem::kPageSize - 1)) != 0) {
    return Status::InvalidArgument("unaligned map address");
  }
  if (prot.key > mem::kPteKeyMax) {
    return Status::InvalidArgument("page key exceeds 10 bits");
  }
  for (std::uint64_t i = 0; i < page_count; ++i) {
    const std::uint64_t page_vaddr = vaddr + i * mem::kPageSize;
    auto slot = LeafSlot(page_vaddr, /*create=*/true);
    if (!slot.ok()) return slot.status();
    mem::Pte existing(memory_->Read(*slot, 8));
    if (existing.valid()) {
      return Status::AlreadyExists("page already mapped");
    }
    auto frame = frames_->Allocate();
    if (!frame.ok()) return frame.status();
    memory_->Fill(*frame << mem::kPageShift, mem::kPageSize, 0);
    const mem::Pte pte = mem::Pte::MakeLeaf(*frame, PteFlags(prot), prot.key);
    memory_->Write(*slot, 8, pte.raw());
    ++mapped_pages_;
  }
  return Status::Ok();
}

Status AddressSpace::Protect(std::uint64_t vaddr, std::uint64_t page_count,
                             const PageProt& prot) {
  if ((vaddr & (mem::kPageSize - 1)) != 0) {
    return Status::InvalidArgument("unaligned protect address");
  }
  if (prot.key > mem::kPteKeyMax) {
    return Status::InvalidArgument("page key exceeds 10 bits");
  }
  for (std::uint64_t i = 0; i < page_count; ++i) {
    const std::uint64_t page_vaddr = vaddr + i * mem::kPageSize;
    auto slot = LeafSlot(page_vaddr, /*create=*/false);
    if (!slot.ok()) return slot.status();
    mem::Pte pte(memory_->Read(*slot, 8));
    if (!pte.valid() || !pte.leaf()) {
      return Status::NotFound("protect on unmapped page");
    }
    pte.set_flags(PteFlags(prot));
    pte.set_key(prot.key);
    memory_->Write(*slot, 8, pte.raw());
  }
  return Status::Ok();
}

StatusOr<mem::Pte> AddressSpace::GetPte(std::uint64_t vaddr) const {
  auto slot = const_cast<AddressSpace*>(this)->LeafSlot(vaddr,
                                                        /*create=*/false);
  if (!slot.ok()) return slot.status();
  mem::Pte pte(memory_->Read(*slot, 8));
  if (!pte.valid()) return Status::NotFound("unmapped page");
  return pte;
}

StatusOr<std::uint64_t> AddressSpace::VirtToPhys(std::uint64_t vaddr) const {
  auto pte = GetPte(AlignDown(vaddr, mem::kPageSize));
  if (!pte.ok()) return pte.status();
  return (pte->ppn() << mem::kPageShift) + (vaddr & (mem::kPageSize - 1));
}

Status AddressSpace::CopyIn(std::uint64_t vaddr, const std::uint8_t* data,
                            std::uint64_t size) {
  while (size > 0) {
    auto phys = VirtToPhys(vaddr);
    if (!phys.ok()) return phys.status();
    const std::uint64_t in_page =
        mem::kPageSize - (vaddr & (mem::kPageSize - 1));
    const std::uint64_t chunk = size < in_page ? size : in_page;
    memory_->WriteBlock(*phys, data, chunk);
    vaddr += chunk;
    data += chunk;
    size -= chunk;
  }
  return Status::Ok();
}

Status AddressSpace::CopyOut(std::uint64_t vaddr, std::uint8_t* data,
                             std::uint64_t size) const {
  while (size > 0) {
    auto phys = VirtToPhys(vaddr);
    if (!phys.ok()) return phys.status();
    const std::uint64_t in_page =
        mem::kPageSize - (vaddr & (mem::kPageSize - 1));
    const std::uint64_t chunk = size < in_page ? size : in_page;
    for (std::uint64_t i = 0; i < chunk; ++i) {
      data[i] = static_cast<std::uint8_t>(memory_->Read(*phys + i, 1));
    }
    vaddr += chunk;
    data += chunk;
    size -= chunk;
  }
  return Status::Ok();
}

}  // namespace roload::kernel
