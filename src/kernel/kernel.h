// Mini operating-system kernel for the simulated machine. Responsibilities
// mirror the paper's Linux changes:
//   * loading program images and setting up page keys for the
//     `.rodata.key.<K>` allowlist sections during executable loading,
//   * providing mmap/mprotect syscalls that accept a page key,
//   * handling traps: distinguishing the ROLoad page fault from benign
//     load page faults and delivering SIGSEGV to the faulting process.
//
// A kernel built with `roload_aware == false` models the unmodified Linux:
// the loader ignores section keys (maps allowlists as plain read-only
// pages with key 0) and the fault handler treats the ROLoad cause as an
// unknown fault.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "asmtool/image.h"
#include "cpu/cpu.h"
#include "kernel/address_space.h"
#include "trace/hub.h"

namespace roload::kernel {

struct KernelConfig {
  bool roload_aware = true;
  std::uint64_t stack_top = 0x7FFF0000;
  std::uint64_t stack_pages = 64;      // 256 KiB stack
  std::uint64_t heap_base = 0x40000000;
  std::uint64_t mmap_base = 0x50000000;
  // SMP TLB-shootdown protocol: when a syscall edits PTEs (brk/mmap/
  // mprotect — including a page-key change), flush not just the calling
  // hart's TLBs but every other hart's too, charging the initiator an IPI
  // round-trip per remote hart. Turning this off models the unsound
  // kernel that only runs sfence.vma locally — the stale-translation race
  // the regression tests pin down. Irrelevant with a single hart.
  bool tlb_shootdown = true;
  unsigned shootdown_ipi_cycles = 40;  // per remote hart, charged to caller
};

// Signal numbers (only the ones the kernel delivers).
inline constexpr int kSigsegv = 11;
inline constexpr int kSigill = 4;

// Why a run ended.
enum class ExitKind : std::uint8_t {
  kExited,       // guest called exit()
  kKilled,       // kernel delivered a fatal signal
  kInstructionLimit,
};

struct RunResult {
  ExitKind kind = ExitKind::kExited;
  std::int64_t exit_code = 0;
  int signal = 0;
  isa::TrapCause trap_cause = isa::TrapCause::kIllegalInstruction;
  std::uint64_t fault_addr = 0;
  std::uint64_t fault_pc = 0;
  // True when a roload-aware kernel classified the fault as a ROLoad
  // pointee-integrity violation (the paper's attack-detected path).
  bool roload_violation = false;
  // Hart that produced this result (the faulting hart for kKilled); always
  // 0 on single-hart machines.
  unsigned hart = 0;
  std::string stdout_text;

  // Final performance counters.
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t peak_mem_kib = 0;
};

// Kernel-side activity counters, exposed to the telemetry registry
// ("kernel.syscalls", "kernel.fault.roload", ...).
struct KernelStats {
  std::uint64_t syscalls = 0;
  std::uint64_t traps = 0;
  std::uint64_t roload_faults = 0;   // hardware kRoLoadPageFault causes seen
  std::uint64_t signals = 0;         // fatal signals delivered
  std::uint64_t context_switches = 0;
  std::uint64_t tlb_shootdowns = 0;  // remote flushes delivered (SMP only)
};

// Observer of fatal-signal delivery, called synchronously from the trap
// handler *before* the run unwinds — i.e. while the faulting process's
// architectural state (registers, page tables, memory) is still intact
// and inspectable. The audit layer's fault autopsy hangs off this hook.
class FatalFaultObserver {
 public:
  virtual ~FatalFaultObserver() = default;
  // `trap` is the hardware trap being converted into a signal; `result`
  // already carries the kernel's classification (signal number,
  // roload_violation, fault pc/addr).
  virtual void OnFatalFault(const isa::Trap& trap,
                            const RunResult& result) = 0;
};

// Guest syscall numbers (RISC-V Linux numbers where they exist).
inline constexpr std::uint64_t kSysExit = 93;
inline constexpr std::uint64_t kSysWrite = 64;
inline constexpr std::uint64_t kSysBrk = 214;
inline constexpr std::uint64_t kSysMmap = 222;
inline constexpr std::uint64_t kSysMprotect = 226;

// mmap/mprotect `prot` encoding: low 3 bits = PROT_READ/WRITE/EXEC, and the
// ROLoad extension carries the page key in bits [25:16].
inline constexpr std::uint64_t kProtRead = 1;
inline constexpr std::uint64_t kProtWrite = 2;
inline constexpr std::uint64_t kProtExec = 4;
inline constexpr unsigned kProtKeyShift = 16;

// Per-hart supervisor state: the CSR analogues a real RISC-V kernel keeps
// per hart (sepc/scause/stval snapshots of the last trap taken on that
// hart) plus the shootdown bookkeeping. Hart 0 exists on every machine;
// AttachHart() adds the rest.
struct HartState {
  bool alive = false;          // running under RunSmp
  std::uint64_t sepc = 0;      // pc of the last trap taken on this hart
  std::uint64_t scause = 0;    // its cause (isa::TrapCause value)
  std::uint64_t stval = 0;     // its faulting address
  std::uint64_t traps = 0;     // traps taken on this hart
  std::uint64_t shootdowns_received = 0;  // remote flushes delivered here
  std::uint64_t start_instructions = 0;   // RunSmp accounting baseline
  RunResult result;
};

class Kernel {
 public:
  Kernel(const KernelConfig& config, mem::PhysMemory* memory, cpu::Cpu* cpu);

  // Creates the process address space from `image`, maps the stack, and
  // points the CPU at the entry. Must be called before Run(). Equivalent
  // to LoadProcess + activating the new process.
  Status Load(const asmtool::LinkImage& image);

  // Multi-process API: creates a process without activating it; returns
  // its pid. Processes are scheduled round-robin by RunAll().
  StatusOr<int> LoadProcess(const asmtool::LinkImage& image);

  // Runs the active process until exit, fatal signal, or the limit.
  RunResult Run(std::uint64_t max_instructions);

  // Round-robin scheduler: runs every live process in `slice`-instruction
  // time slices until all have exited/died or `total_limit` instructions
  // have been executed overall. Context switches save/restore exactly the
  // base architectural state (31 GPRs + pc + satp root): ROLoad adds no
  // per-process state, and the root-tagged TLB needs no shootdown.
  std::vector<RunResult> RunAll(std::uint64_t slice,
                                std::uint64_t total_limit);

  // ---- SMP API -------------------------------------------------------
  // The machine starts with one hart (the constructor's cpu). AttachHart
  // registers additional harts before LoadSmp; all harts share the
  // physical memory and, under LoadSmp, one address space.
  void AttachHart(cpu::Cpu* cpu);
  unsigned num_harts() const { return static_cast<unsigned>(harts_.size()); }
  unsigned current_hart() const { return current_hart_; }
  // Points the kernel (and the trace hub's clock/hart stamp, when harts
  // have been attached) at hart `hart`. The SMP scheduler calls this at
  // every quantum boundary.
  void set_current_hart(unsigned hart);
  const HartState& hart_state(unsigned hart) const {
    return hart_states_[hart];
  }

  // Loads `image` once and starts every attached hart in the shared
  // address space: hart h enters at the image entry with a0 = h,
  // a1 = num_harts and its own stack (hart h's stack sits h stack-regions
  // below stack_top). Must be called after AttachHart.
  Status LoadSmp(const asmtool::LinkImage& image);

  // Deterministic SMP scheduler: round-robin over live harts in hart-id
  // order, `quantum` instructions per turn, on one host thread — the
  // interleaving is a pure function of the program, so runs reproduce
  // exactly regardless of host parallelism. Stops when every hart has
  // exited, any hart takes a fatal trap (the whole machine halts,
  // recording the faulting hart), or `total_limit` instructions have
  // retired across all harts. Returns one result per hart.
  std::vector<RunResult> RunSmp(std::uint64_t quantum,
                                std::uint64_t total_limit);

  std::uint64_t context_switches() const { return stats_.context_switches; }
  const KernelStats& stats() const { return stats_; }
  AddressSpace* address_space();
  const KernelConfig& config() const { return config_; }

  // Telemetry attachment (null disables): trap/syscall/context-switch
  // events flow into `hub`; the counter cells stay in stats_.
  void set_trace(trace::Hub* hub) { trace_ = hub; }

  // Fatal-fault observer (null disables): called on every fatal-signal
  // delivery with the process state still intact. The observer must
  // outlive the kernel or be detached first.
  void set_fault_observer(FatalFaultObserver* observer) {
    fault_observer_ = observer;
  }

 private:
  struct Process {
    std::unique_ptr<AddressSpace> space;
    std::array<std::uint64_t, isa::kNumRegs> regs{};
    std::uint64_t pc = 0;
    std::uint64_t brk = 0;
    std::uint64_t mmap_cursor = 0;
    std::string stdout_text;
    bool alive = true;
    RunResult result;
  };

  // Saves the CPU state of the active process and restores `pid`'s.
  void SwitchTo(int pid);
  Process& active() { return processes_[static_cast<std::size_t>(active_)]; }

  // Services the ecall the CPU just raised. Returns true when the process
  // should keep running.
  bool HandleSyscall(RunResult* result);
  // Trap handler: the page-fault discrimination path.
  void HandleTrap(const isa::Trap& trap, RunResult* result);
  // The sfence.vma path after a PTE edit: flushes the calling hart's TLBs
  // and (on SMP machines with tlb_shootdown enabled) delivers a remote
  // flush to every other hart, charging the caller the IPI cost.
  void ShootdownTlbs();

  std::uint64_t PagesFor(std::uint64_t bytes) const {
    return (bytes + mem::kPageSize - 1) / mem::kPageSize;
  }

  KernelConfig config_;
  mem::PhysMemory* memory_;
  // The running hart's CPU — every handler below reads architectural
  // state through it. Single-hart kernels never re-point it; the SMP
  // scheduler moves it via set_current_hart.
  cpu::Cpu* cpu_;
  std::vector<cpu::Cpu*> harts_;      // harts_[0] is the constructor's cpu
  std::vector<HartState> hart_states_;
  unsigned current_hart_ = 0;
  std::unique_ptr<FrameAllocator> frames_;
  std::vector<Process> processes_;
  int active_ = -1;
  KernelStats stats_;
  trace::Hub* trace_ = nullptr;
  FatalFaultObserver* fault_observer_ = nullptr;
};

}  // namespace roload::kernel
