#include "kernel/kernel.h"

#include "support/bits.h"
#include "support/logging.h"

namespace roload::kernel {

Kernel::Kernel(const KernelConfig& config, mem::PhysMemory* memory,
               cpu::Cpu* cpu)
    : config_(config), memory_(memory), cpu_(cpu) {
  // Reserve the low frames so the null phys page is never handed out;
  // frames start right after a small kernel-reserved region.
  const std::uint64_t total_frames = memory_->size() >> mem::kPageShift;
  frames_ = std::make_unique<FrameAllocator>(16, total_frames - 16);
  harts_.push_back(cpu);
  hart_states_.resize(1);
}

void Kernel::AttachHart(cpu::Cpu* cpu) {
  ROLOAD_CHECK(cpu != nullptr);
  harts_.push_back(cpu);
  hart_states_.resize(harts_.size());
}

void Kernel::set_current_hart(unsigned hart) {
  ROLOAD_CHECK(hart < harts_.size());
  current_hart_ = hart;
  cpu_ = harts_[hart];
  // Keep the telemetry stream coherent: timestamps come from the running
  // hart's cycle counter and every event carries the hart id. Single-hart
  // machines never reach this (the System wires the clock once).
  if (trace_ != nullptr && harts_.size() > 1) {
    trace_->set_clock(&cpu_->stats().cycles);
    trace_->set_current_hart(hart);
  }
}

void Kernel::ShootdownTlbs() {
  // Local sfence.vma: the calling hart always flushes.
  cpu_->FlushTlbs();
  if (harts_.size() <= 1 || !config_.tlb_shootdown) return;
  // Remote shootdown: deliver a flush IPI to every other hart so no stale
  // keyed translation survives the PTE edit, and charge the initiator one
  // IPI round-trip per remote hart.
  unsigned remote = 0;
  const bool trace_events =
      trace_ != nullptr && trace_->enabled(trace::EventCategory::kKernel);
  for (unsigned h = 0; h < harts_.size(); ++h) {
    if (h == current_hart_) continue;
    harts_[h]->FlushTlbs();
    ++hart_states_[h].shootdowns_received;
    ++stats_.tlb_shootdowns;
    ++remote;
    if (trace_events) {
      trace_->Emit(trace::Unit::kKernel, trace::EventCategory::kKernel,
                   trace::EventType::kTlbShootdown, cpu_->pc(), 0,
                   (static_cast<std::uint64_t>(h) << 16) | current_hart_);
    }
  }
  cpu_->ChargeStallCycles(config_.shootdown_ipi_cycles * remote);
}

AddressSpace* Kernel::address_space() {
  return active_ >= 0 ? active().space.get() : nullptr;
}

StatusOr<int> Kernel::LoadProcess(const asmtool::LinkImage& image) {
  Process process;
  process.space = std::make_unique<AddressSpace>(memory_, frames_.get());

  for (const asmtool::Section& section : image.sections) {
    if (section.size == 0) continue;
    if ((section.vaddr & (mem::kPageSize - 1)) != 0) {
      return Status::InvalidArgument("section not page aligned: " +
                                     section.name);
    }
    PageProt prot;
    prot.read = section.perms.read;
    prot.write = section.perms.write;
    prot.exec = section.perms.exec;
    // The roload-aware kernel honours the image's section keys during
    // executable loading; the unmodified kernel has no notion of keys.
    prot.key = config_.roload_aware ? section.key : mem::kDefaultPageKey;

    const std::uint64_t pages = PagesFor(section.size);
    // Map writable first so the loader can copy the initial bytes, then
    // tighten to the final permissions (the standard loader dance).
    PageProt staging = prot;
    staging.write = true;
    ROLOAD_RETURN_IF_ERROR(process.space->Map(section.vaddr, pages, staging));
    if (!section.bytes.empty()) {
      ROLOAD_RETURN_IF_ERROR(process.space->CopyIn(section.vaddr,
                                                   section.bytes.data(),
                                                   section.bytes.size()));
    }
    ROLOAD_RETURN_IF_ERROR(process.space->Protect(section.vaddr, pages, prot));
  }

  // Stack.
  const std::uint64_t stack_base =
      config_.stack_top - config_.stack_pages * mem::kPageSize;
  ROLOAD_RETURN_IF_ERROR(
      process.space->Map(stack_base, config_.stack_pages, PageProt::Rw()));

  process.brk = config_.heap_base;
  process.mmap_cursor = config_.mmap_base;
  process.pc = image.entry;
  process.regs[isa::kSp] = config_.stack_top - 64;

  processes_.push_back(std::move(process));
  return static_cast<int>(processes_.size() - 1);
}

void Kernel::SwitchTo(int pid) {
  ROLOAD_CHECK(pid >= 0 && pid < static_cast<int>(processes_.size()));
  if (active_ == pid) return;
  if (active_ >= 0) {
    // Save exactly the base architectural state. ROLoad introduces no
    // per-process registers: keys live in the page tables, so nothing
    // extra crosses the context switch (contrast with shadow-stack
    // pointers or branch-state machines in Intel CET / ARM BTI).
    Process& old = active();
    old.pc = cpu_->pc();
    for (unsigned r = 0; r < isa::kNumRegs; ++r) old.regs[r] = cpu_->reg(r);
    ++stats_.context_switches;
    if (trace_ != nullptr &&
        trace_->enabled(trace::EventCategory::kKernel)) {
      trace_->Emit(trace::Unit::kKernel, trace::EventCategory::kKernel,
                   trace::EventType::kContextSwitch, cpu_->pc(), 0,
                   static_cast<std::uint64_t>(pid));
    }
  }
  active_ = pid;
  Process& next = active();
  cpu_->set_pc(next.pc);
  for (unsigned r = 1; r < isa::kNumRegs; ++r) {
    cpu_->set_reg(r, next.regs[r]);
  }
  // satp switch: the TLB tags entries with the root PPN (ASID model), so
  // no shootdown is required on the switch path.
  cpu_->set_root_ppn(next.space->root_ppn());
}

Status Kernel::Load(const asmtool::LinkImage& image) {
  auto pid = LoadProcess(image);
  if (!pid.ok()) return pid.status();
  active_ = -1;  // discard any previous single-process session state
  SwitchTo(*pid);
  cpu_->FlushTlbs();  // fresh page tables may reuse recycled frames
  return Status::Ok();
}

bool Kernel::HandleSyscall(RunResult* result) {
  Process& process = active();
  const std::uint64_t number = cpu_->reg(isa::kA7);
  const std::uint64_t a0 = cpu_->reg(isa::kA0);
  const std::uint64_t a1 = cpu_->reg(isa::kA1);
  const std::uint64_t a2 = cpu_->reg(isa::kA2);

  ++stats_.syscalls;
  if (trace_ != nullptr && trace_->enabled(trace::EventCategory::kKernel)) {
    trace_->Emit(trace::Unit::kKernel, trace::EventCategory::kKernel,
                 trace::EventType::kSyscall, cpu_->pc(), a0, number);
  }

  switch (number) {
    case kSysExit:
      result->kind = ExitKind::kExited;
      result->exit_code = static_cast<std::int64_t>(a0);
      return false;
    case kSysWrite: {
      // write(fd, buf, len): only stdout/stderr, captured per process.
      if (a0 != 1 && a0 != 2) {
        cpu_->set_reg(isa::kA0, static_cast<std::uint64_t>(-9));  // EBADF
        return true;
      }
      std::string buffer(a2, '\0');
      Status status = process.space->CopyOut(
          a1, reinterpret_cast<std::uint8_t*>(buffer.data()), a2);
      if (!status.ok()) {
        cpu_->set_reg(isa::kA0, static_cast<std::uint64_t>(-14));  // EFAULT
        return true;
      }
      process.stdout_text += buffer;
      cpu_->set_reg(isa::kA0, a2);
      return true;
    }
    case kSysBrk: {
      if (a0 == 0) {
        cpu_->set_reg(isa::kA0, process.brk);
        return true;
      }
      const std::uint64_t new_brk = a0;
      if (new_brk < config_.heap_base || new_brk >= config_.mmap_base) {
        cpu_->set_reg(isa::kA0, process.brk);
        return true;
      }
      const std::uint64_t old_end = AlignUp(process.brk, mem::kPageSize);
      const std::uint64_t new_end = AlignUp(new_brk, mem::kPageSize);
      if (new_end > old_end) {
        Status status = process.space->Map(
            old_end, (new_end - old_end) >> mem::kPageShift, PageProt::Rw());
        if (!status.ok()) {
          cpu_->set_reg(isa::kA0, process.brk);
          return true;
        }
        ShootdownTlbs();
      }
      process.brk = new_brk;
      cpu_->set_reg(isa::kA0, process.brk);
      return true;
    }
    case kSysMmap: {
      // mmap(addr, len, prot, flags, fd, off) — anonymous only. The ROLoad
      // extension: prot bits [25:16] carry the page key. The unmodified
      // kernel masks the key off (it does not know the field).
      const std::uint64_t len = a1;
      const std::uint64_t prot_bits = a2;
      if (len == 0) {
        cpu_->set_reg(isa::kA0, static_cast<std::uint64_t>(-22));  // EINVAL
        return true;
      }
      PageProt prot;
      prot.read = (prot_bits & kProtRead) != 0;
      prot.write = (prot_bits & kProtWrite) != 0;
      prot.exec = (prot_bits & kProtExec) != 0;
      prot.key = config_.roload_aware
                     ? static_cast<std::uint32_t>(
                           (prot_bits >> kProtKeyShift) & mem::kPteKeyMax)
                     : mem::kDefaultPageKey;
      std::uint64_t addr = a0 != 0 ? a0 : process.mmap_cursor;
      addr = AlignUp(addr, mem::kPageSize);
      const std::uint64_t pages = PagesFor(len);
      Status status = process.space->Map(addr, pages, prot);
      if (!status.ok()) {
        cpu_->set_reg(isa::kA0, static_cast<std::uint64_t>(-12));  // ENOMEM
        return true;
      }
      if (a0 == 0) process.mmap_cursor = addr + pages * mem::kPageSize;
      ShootdownTlbs();
      cpu_->set_reg(isa::kA0, addr);
      return true;
    }
    case kSysMprotect: {
      const std::uint64_t addr = a0;
      const std::uint64_t len = a1;
      const std::uint64_t prot_bits = a2;
      PageProt prot;
      prot.read = (prot_bits & kProtRead) != 0;
      prot.write = (prot_bits & kProtWrite) != 0;
      prot.exec = (prot_bits & kProtExec) != 0;
      prot.key = config_.roload_aware
                     ? static_cast<std::uint32_t>(
                           (prot_bits >> kProtKeyShift) & mem::kPteKeyMax)
                     : mem::kDefaultPageKey;
      Status status = process.space->Protect(addr, PagesFor(len), prot);
      if (!status.ok()) {
        cpu_->set_reg(isa::kA0, static_cast<std::uint64_t>(-22));  // EINVAL
        return true;
      }
      // PTEs changed: the TLBs must be shot down (sfence.vma on the
      // calling hart, remote-flush IPIs to every other hart).
      ShootdownTlbs();
      cpu_->set_reg(isa::kA0, 0);
      return true;
    }
    default:
      ROLOAD_LOG(kWarning) << "unknown syscall " << number;
      cpu_->set_reg(isa::kA0, static_cast<std::uint64_t>(-38));  // ENOSYS
      return true;
  }
}

void Kernel::HandleTrap(const isa::Trap& trap, RunResult* result) {
  result->kind = ExitKind::kKilled;
  result->trap_cause = trap.cause;
  result->fault_addr = trap.tval;
  result->fault_pc = cpu_->pc();
  result->hart = current_hart_;

  // Latch the per-hart supervisor CSRs (sepc/scause/stval analogues)
  // exactly as trap entry would.
  HartState& hart = hart_states_[current_hart_];
  hart.sepc = cpu_->pc();
  hart.scause = static_cast<std::uint64_t>(trap.cause);
  hart.stval = trap.tval;
  ++hart.traps;

  ++stats_.traps;
  if (trap.cause == isa::TrapCause::kRoLoadPageFault) ++stats_.roload_faults;
  if (trace_ != nullptr && trace_->enabled(trace::EventCategory::kTrap)) {
    trace_->Emit(trace::Unit::kKernel, trace::EventCategory::kTrap,
                 trace::EventType::kTrapEnter, cpu_->pc(), trap.tval,
                 static_cast<std::uint64_t>(trap.cause));
  }

  switch (trap.cause) {
    case isa::TrapCause::kRoLoadPageFault:
      // The modified fault handler (arch/riscv/mm/fault.c in the paper)
      // recognises the ROLoad cause: the process is under attack (or
      // mis-hardened); deliver SIGSEGV.
      result->signal = kSigsegv;
      result->roload_violation = config_.roload_aware;
      break;
    case isa::TrapCause::kIllegalInstruction:
      result->signal = kSigill;
      break;
    default:
      result->signal = kSigsegv;
      break;
  }
  ++stats_.signals;
  // Forensics + teardown hooks, in that order: the autopsy observer sees
  // the process state first (it reads registers, walks page tables), then
  // the fatal-signal broadcast lets buffered sinks (the streaming trace
  // file) flush — so the autopsy's own trailing events make it to disk.
  if (fault_observer_ != nullptr) fault_observer_->OnFatalFault(trap, *result);
  if (trace_ != nullptr) trace_->NotifyFatalSignal();
}

RunResult Kernel::Run(std::uint64_t max_instructions) {
  ROLOAD_CHECK(active_ >= 0);
  RunResult result;
  const std::uint64_t start_instructions = cpu_->stats().instructions;
  bool running = true;
  while (running) {
    const std::uint64_t executed =
        cpu_->stats().instructions - start_instructions;
    if (executed >= max_instructions) {
      result.kind = ExitKind::kInstructionLimit;
      break;
    }
    // Batched execution: Run() retires up to the remaining budget before
    // returning, so the scheduler check above happens at exactly the same
    // instruction boundaries as the per-Step loop it replaced — and the
    // translation tier gets a hot loop free of per-instruction checks.
    switch (cpu_->Run(max_instructions - executed)) {
      case cpu::StepEvent::kRetired:
        break;
      case cpu::StepEvent::kEcall:
        running = HandleSyscall(&result);
        break;
      case cpu::StepEvent::kTrap:
        HandleTrap(cpu_->pending_trap(), &result);
        running = false;
        break;
    }
  }
  Process& process = active();
  if (result.kind != ExitKind::kInstructionLimit) process.alive = false;
  result.stdout_text = process.stdout_text;
  result.instructions = cpu_->stats().instructions - start_instructions;
  result.cycles = cpu_->stats().cycles;
  result.peak_mem_kib = process.space->mapped_pages() * mem::kPageSize / 1024;
  process.result = result;
  return result;
}

Status Kernel::LoadSmp(const asmtool::LinkImage& image) {
  auto pid = LoadProcess(image);
  if (!pid.ok()) return pid.status();
  active_ = *pid;
  Process& process = active();

  // Hart 0 reuses the stack LoadProcess mapped; every further hart gets
  // its own equally-sized region, stacked downwards below it.
  const std::uint64_t stride = config_.stack_pages * mem::kPageSize;
  const unsigned nharts = num_harts();
  for (unsigned h = 1; h < nharts; ++h) {
    const std::uint64_t base = config_.stack_top - (h + 1) * stride;
    ROLOAD_RETURN_IF_ERROR(
        process.space->Map(base, config_.stack_pages, PageProt::Rw()));
  }

  for (unsigned h = 0; h < nharts; ++h) {
    cpu::Cpu* cpu = harts_[h];
    cpu->set_pc(image.entry);
    for (unsigned r = 1; r < isa::kNumRegs; ++r) cpu->set_reg(r, 0);
    cpu->set_reg(isa::kSp, config_.stack_top - h * stride - 64);
    // SBI-style boot protocol: a0 = hartid, a1 = hart count. _start
    // forwards both untouched, so main(i64, i64) receives them.
    cpu->set_reg(isa::kA0, h);
    cpu->set_reg(isa::kA1, nharts);
    cpu->set_root_ppn(process.space->root_ppn());
    cpu->FlushTlbs();  // fresh page tables may reuse recycled frames
    hart_states_[h] = HartState{};
    hart_states_[h].alive = true;
    hart_states_[h].start_instructions = cpu->stats().instructions;
  }
  set_current_hart(0);
  return Status::Ok();
}

std::vector<RunResult> Kernel::RunSmp(std::uint64_t quantum,
                                      std::uint64_t total_limit) {
  ROLOAD_CHECK(active_ >= 0);
  ROLOAD_CHECK(quantum > 0);
  std::uint64_t executed = 0;
  bool fatal = false;
  bool any_alive = true;
  while (any_alive && !fatal && executed < total_limit) {
    any_alive = false;
    for (unsigned h = 0; h < harts_.size() && !fatal; ++h) {
      HartState& hart = hart_states_[h];
      if (!hart.alive) continue;
      any_alive = true;
      set_current_hart(h);
      const std::uint64_t turn_start = cpu_->stats().instructions;
      bool running = true;
      while (running && cpu_->stats().instructions - turn_start < quantum) {
        // Batched like Kernel::Run: the quantum boundary lands on exactly
        // the same instruction as the per-Step loop, keeping the SMP
        // round-robin interleaving bit-identical across execute tiers.
        switch (cpu_->Run(quantum -
                          (cpu_->stats().instructions - turn_start))) {
          case cpu::StepEvent::kRetired:
            break;
          case cpu::StepEvent::kEcall:
            running = HandleSyscall(&hart.result);
            if (!running) {
              // exit() retires this hart only; the machine keeps going
              // until every hart has exited.
              hart.result.hart = h;
              hart.alive = false;
            }
            break;
          case cpu::StepEvent::kTrap:
            // A fatal signal halts the whole machine, with the faulting
            // hart recorded in the result (HandleTrap sets result.hart).
            HandleTrap(cpu_->pending_trap(), &hart.result);
            hart.alive = false;
            running = false;
            fatal = true;
            break;
        }
      }
      executed += cpu_->stats().instructions - turn_start;
      if (executed >= total_limit) break;
    }
  }

  Process& process = active();
  std::vector<RunResult> results;
  results.reserve(harts_.size());
  bool none_alive = true;
  for (const HartState& hart : hart_states_) {
    if (hart.alive) none_alive = false;
  }
  if (fatal || none_alive) process.alive = false;
  for (unsigned h = 0; h < harts_.size(); ++h) {
    HartState& hart = hart_states_[h];
    if (hart.alive) {
      // Still running when the machine stopped: the shared instruction
      // budget ran out, or another hart's fatal trap halted everything.
      hart.result.kind = ExitKind::kInstructionLimit;
      hart.result.hart = h;
    }
    hart.result.instructions =
        harts_[h]->stats().instructions - hart.start_instructions;
    hart.result.cycles = harts_[h]->stats().cycles;
    hart.result.peak_mem_kib =
        process.space->mapped_pages() * mem::kPageSize / 1024;
    hart.result.stdout_text = process.stdout_text;
    results.push_back(hart.result);
  }
  return results;
}

std::vector<RunResult> Kernel::RunAll(std::uint64_t slice,
                                      std::uint64_t total_limit) {
  ROLOAD_CHECK(!processes_.empty());
  const std::uint64_t start_instructions = cpu_->stats().instructions;
  bool any_alive = true;
  while (any_alive &&
         cpu_->stats().instructions - start_instructions < total_limit) {
    any_alive = false;
    for (int pid = 0; pid < static_cast<int>(processes_.size()); ++pid) {
      if (!processes_[static_cast<std::size_t>(pid)].alive) continue;
      any_alive = true;
      SwitchTo(pid);
      Run(slice);  // a limit outcome keeps the process alive
    }
  }
  std::vector<RunResult> results;
  results.reserve(processes_.size());
  for (Process& process : processes_) {
    if (process.alive) {
      process.result.kind = ExitKind::kInstructionLimit;
    }
    results.push_back(process.result);
  }
  return results;
}

}  // namespace roload::kernel
