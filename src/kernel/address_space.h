// Per-process address space: builds and edits Sv39 page tables (with the
// ROLoad key field) inside simulated physical memory. This is the model of
// the paper's arch/riscv Linux changes that "handle page keys at each level
// of MMU abstraction".
#pragma once

#include <cstdint>
#include <vector>

#include "mem/page_table.h"
#include "mem/phys_memory.h"
#include "support/status.h"

namespace roload::kernel {

// Page protection + key, the argument surface of our mmap/mprotect model.
struct PageProt {
  bool read = false;
  bool write = false;
  bool exec = false;
  std::uint32_t key = mem::kDefaultPageKey;

  static PageProt Rx() { return {true, false, true, 0}; }
  static PageProt Ro(std::uint32_t key = 0) { return {true, false, false, key}; }
  static PageProt Rw() { return {true, true, false, 0}; }
};

// Physical frame allocator: bump allocation with a free list, operating on
// a region of PhysMemory reserved for a process and the kernel.
class FrameAllocator {
 public:
  FrameAllocator(std::uint64_t first_frame, std::uint64_t frame_count)
      : next_(first_frame), end_(first_frame + frame_count) {}

  // Allocates one 4 KiB frame; returns its PPN.
  StatusOr<std::uint64_t> Allocate();
  void Free(std::uint64_t ppn) { free_list_.push_back(ppn); }

  std::uint64_t allocated_frames() const { return allocated_; }

 private:
  std::uint64_t next_;
  std::uint64_t end_;
  std::vector<std::uint64_t> free_list_;
  std::uint64_t allocated_ = 0;
};

class AddressSpace {
 public:
  AddressSpace(mem::PhysMemory* memory, FrameAllocator* frames);

  // Root page-table PPN (the satp value the CPU uses).
  std::uint64_t root_ppn() const { return root_ppn_; }

  // Maps `page_count` pages starting at page-aligned `vaddr`, allocating
  // fresh zeroed frames.
  Status Map(std::uint64_t vaddr, std::uint64_t page_count,
             const PageProt& prot);

  // Changes permissions/key of already-mapped pages (mprotect model).
  Status Protect(std::uint64_t vaddr, std::uint64_t page_count,
                 const PageProt& prot);

  // Reads the leaf PTE mapping `vaddr`, if any.
  StatusOr<mem::Pte> GetPte(std::uint64_t vaddr) const;

  // Translate for kernel-side copies (no permission checks).
  StatusOr<std::uint64_t> VirtToPhys(std::uint64_t vaddr) const;

  // Copies into / out of guest memory across page boundaries.
  Status CopyIn(std::uint64_t vaddr, const std::uint8_t* data,
                std::uint64_t size);
  Status CopyOut(std::uint64_t vaddr, std::uint8_t* data,
                 std::uint64_t size) const;

  std::uint64_t mapped_pages() const { return mapped_pages_; }

 private:
  static std::uint64_t PteFlags(const PageProt& prot);

  // Returns the physical address of the leaf PTE slot for `vaddr`,
  // creating intermediate tables when `create` is set.
  StatusOr<std::uint64_t> LeafSlot(std::uint64_t vaddr, bool create);

  mem::PhysMemory* memory_;
  FrameAllocator* frames_;
  std::uint64_t root_ppn_ = 0;
  std::uint64_t mapped_pages_ = 0;
};

}  // namespace roload::kernel
