// Code generation: lowers an IR module to assembly text for the roload
// assembler. This plays the role of the paper's LLVM RISC-V back-end,
// including the ROLoad machine pass: any IR load carrying roload-md
// metadata is emitted as an ld.ro-family instruction, inserting the extra
// addi when the load had a folded address offset (ld.ro carries no offset
// immediate).
#pragma once

#include <string>

#include "ir/ir.h"
#include "support/status.h"

namespace roload::backend {

struct CodegenOptions {
  // Emit c.ld.ro (2-byte) instead of ld.ro when the key fits 5 bits and
  // the registers allow it — the program-size optimization of Section III.
  bool use_compressed_roload = false;
};

struct CodegenResult {
  std::string assembly;
  // Static instrumentation counters (reported by the benches).
  std::uint64_t roload_instructions = 0;
  std::uint64_t extra_addi_for_roload = 0;
  std::uint64_t cfi_id_words = 0;
};

// Lowers `module` to assembly. The module must pass ir::Verify.
StatusOr<CodegenResult> Generate(const ir::Module& module,
                                 const CodegenOptions& options = {});

}  // namespace roload::backend
