#include "backend/codegen.h"

#include <sstream>

#include "isa/opcodes.h"
#include "support/bits.h"
#include "support/strings.h"

namespace roload::backend {
namespace {

using ir::BinOp;
using ir::Instr;
using ir::InstrKind;

// Emits one function. Virtual registers live in stack slots; operands are
// staged through t0/t1, indirect-call targets through t2 (a deliberately
// simple, always-correct allocation — the evaluation reports overheads
// relative to a baseline lowered identically, so shapes are preserved).
class FunctionEmitter {
 public:
  FunctionEmitter(const ir::Module& module, const ir::Function& fn,
                  const CodegenOptions& options, std::ostringstream& out,
                  CodegenResult& result)
      : module_(module), fn_(fn), options_(options), out_(out),
        result_(result) {}

  Status Emit();

 private:
  // Counts how often each vreg is read (as src1/src2/arg) in the function;
  // used by the load/icall fusion peephole.
  std::vector<unsigned> CountReads() const;
  std::int64_t SlotOffset(int vreg) const { return 8 * vreg; }
  std::uint64_t FrameSize() const {
    return AlignUp(8 * static_cast<std::uint64_t>(fn_.num_vregs) + 8, 16);
  }

  void Line(const std::string& text) { out_ << "  " << text << "\n"; }
  void LoadSlot(const char* reg, int vreg) {
    Line(StrFormat("ld %s, %lld(sp)", reg,
                   static_cast<long long>(SlotOffset(vreg))));
  }
  void StoreSlot(const char* reg, int vreg) {
    Line(StrFormat("sd %s, %lld(sp)", reg,
                   static_cast<long long>(SlotOffset(vreg))));
  }
  std::string LocalLabel(const std::string& label) const {
    return ".L_" + fn_.name + "_" + label;
  }

  Status EmitInstr(const Instr& instr);
  Status EmitBin(const Instr& instr);
  Status EmitLoad(const Instr& instr);

  // Set when the previous instruction was a roload-md load feeding only
  // the upcoming indirect call: the target is already in t2, checked.
  bool icall_target_in_t2_ = false;

  const ir::Module& module_;
  const ir::Function& fn_;
  const CodegenOptions& options_;
  std::ostringstream& out_;
  CodegenResult& result_;
};

const char* LoadMnemonic(unsigned width, bool sign_extend) {
  switch (width) {
    case 1:
      return sign_extend ? "lb" : "lbu";
    case 2:
      return sign_extend ? "lh" : "lhu";
    case 4:
      return sign_extend ? "lw" : "lwu";
    default:
      return "ld";
  }
}

const char* RoLoadMnemonic(unsigned width) {
  switch (width) {
    case 1:
      return "lb.ro";
    case 2:
      return "lh.ro";
    case 4:
      return "lw.ro";
    default:
      return "ld.ro";
  }
}

const char* StoreMnemonic(unsigned width) {
  switch (width) {
    case 1:
      return "sb";
    case 2:
      return "sh";
    case 4:
      return "sw";
    default:
      return "sd";
  }
}

Status FunctionEmitter::EmitBin(const Instr& instr) {
  // Immediate forms where the ISA has one and the value fits.
  if (instr.kind == InstrKind::kBinImm && FitsSigned(instr.imm, 12)) {
    const char* imm_op = nullptr;
    switch (instr.bin_op) {
      case BinOp::kAdd:
        imm_op = "addi";
        break;
      case BinOp::kAnd:
        imm_op = "andi";
        break;
      case BinOp::kOr:
        imm_op = "ori";
        break;
      case BinOp::kXor:
        imm_op = "xori";
        break;
      case BinOp::kSlt:
        imm_op = "slti";
        break;
      case BinOp::kSltu:
        imm_op = "sltiu";
        break;
      case BinOp::kShl:
        imm_op = "slli";
        break;
      case BinOp::kShr:
        imm_op = "srli";
        break;
      case BinOp::kSar:
        imm_op = "srai";
        break;
      default:
        break;
    }
    if (imm_op != nullptr &&
        (instr.bin_op != BinOp::kShl || (instr.imm >= 0 && instr.imm < 64)) &&
        (instr.bin_op != BinOp::kShr || (instr.imm >= 0 && instr.imm < 64)) &&
        (instr.bin_op != BinOp::kSar || (instr.imm >= 0 && instr.imm < 64))) {
      LoadSlot("t0", instr.src1);
      Line(StrFormat("%s t0, t0, %lld", imm_op,
                     static_cast<long long>(instr.imm)));
      StoreSlot("t0", instr.dst);
      return Status::Ok();
    }
  }

  LoadSlot("t0", instr.src1);
  if (instr.kind == InstrKind::kBinImm) {
    Line(StrFormat("li t1, %lld", static_cast<long long>(instr.imm)));
  } else {
    LoadSlot("t1", instr.src2);
  }
  switch (instr.bin_op) {
    case BinOp::kAdd:
      Line("add t0, t0, t1");
      break;
    case BinOp::kSub:
      Line("sub t0, t0, t1");
      break;
    case BinOp::kMul:
      Line("mul t0, t0, t1");
      break;
    case BinOp::kDiv:
      Line("div t0, t0, t1");
      break;
    case BinOp::kRem:
      Line("rem t0, t0, t1");
      break;
    case BinOp::kAnd:
      Line("and t0, t0, t1");
      break;
    case BinOp::kOr:
      Line("or t0, t0, t1");
      break;
    case BinOp::kXor:
      Line("xor t0, t0, t1");
      break;
    case BinOp::kShl:
      Line("sll t0, t0, t1");
      break;
    case BinOp::kShr:
      Line("srl t0, t0, t1");
      break;
    case BinOp::kSar:
      Line("sra t0, t0, t1");
      break;
    case BinOp::kSlt:
      Line("slt t0, t0, t1");
      break;
    case BinOp::kSltu:
      Line("sltu t0, t0, t1");
      break;
    case BinOp::kEq:
      Line("sub t0, t0, t1");
      Line("seqz t0, t0");
      break;
    case BinOp::kNe:
      Line("sub t0, t0, t1");
      Line("snez t0, t0");
      break;
  }
  StoreSlot("t0", instr.dst);
  return Status::Ok();
}

Status FunctionEmitter::EmitLoad(const Instr& instr) {
  LoadSlot("t0", instr.src1);
  if (instr.has_roload_md) {
    // The ROLoad machine pass: ld + roload-md -> ld.ro. The instruction
    // carries no offset immediate, so a folded offset costs one addi.
    if (instr.imm != 0) {
      if (!FitsSigned(instr.imm, 12)) {
        return Status::InvalidArgument("roload offset exceeds 12 bits");
      }
      Line(StrFormat("addi t0, t0, %lld",
                     static_cast<long long>(instr.imm)));
      ++result_.extra_addi_for_roload;
    }
    if (options_.use_compressed_roload && instr.width == 8 &&
        instr.roload_key < isa::kNumCompressedKeys) {
      // t0/t1 are not RVC registers; stage through a0-range registers.
      // We use s1 (x9) and a5 (x15), both in the compressed register set.
      Line("mv s1, t0");
      Line(StrFormat("c.ld.ro a5, (s1), %u", instr.roload_key));
      Line("mv t1, a5");
    } else {
      Line(StrFormat("%s t1, (t0), %u", RoLoadMnemonic(instr.width),
                     instr.roload_key));
    }
    ++result_.roload_instructions;
  } else {
    if (!FitsSigned(instr.imm, 12)) {
      return Status::InvalidArgument("load offset exceeds 12 bits");
    }
    Line(StrFormat("%s t1, %lld(t0)",
                   LoadMnemonic(instr.width, instr.sign_extend),
                   static_cast<long long>(instr.imm)));
  }
  StoreSlot("t1", instr.dst);
  return Status::Ok();
}

Status FunctionEmitter::EmitInstr(const Instr& instr) {
  switch (instr.kind) {
    case InstrKind::kConst:
      Line(StrFormat("li t0, %lld", static_cast<long long>(instr.imm)));
      StoreSlot("t0", instr.dst);
      return Status::Ok();
    case InstrKind::kAddrOf:
      Line("la t0, " + instr.symbol);
      if (instr.imm != 0) {
        if (!FitsSigned(instr.imm, 12)) {
          return Status::InvalidArgument("addrof offset exceeds 12 bits");
        }
        Line(StrFormat("addi t0, t0, %lld",
                       static_cast<long long>(instr.imm)));
      }
      StoreSlot("t0", instr.dst);
      return Status::Ok();
    case InstrKind::kBin:
    case InstrKind::kBinImm:
      return EmitBin(instr);
    case InstrKind::kLoad:
      return EmitLoad(instr);
    case InstrKind::kStore:
      LoadSlot("t0", instr.src1);
      LoadSlot("t1", instr.src2);
      if (!FitsSigned(instr.imm, 12)) {
        return Status::InvalidArgument("store offset exceeds 12 bits");
      }
      Line(StrFormat("%s t1, %lld(t0)", StoreMnemonic(instr.width),
                     static_cast<long long>(instr.imm)));
      return Status::Ok();
    case InstrKind::kBr:
      Line("j " + LocalLabel(instr.label));
      return Status::Ok();
    case InstrKind::kCondBr:
      LoadSlot("t0", instr.src1);
      Line("bnez t0, " + LocalLabel(instr.label));
      Line("j " + LocalLabel(instr.false_label));
      return Status::Ok();
    case InstrKind::kCall: {
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        Line(StrFormat("ld a%zu, %lld(sp)", i,
                       static_cast<long long>(SlotOffset(instr.args[i]))));
      }
      Line("call " + instr.symbol);
      if (instr.dst >= 0) StoreSlot("a0", instr.dst);
      return Status::Ok();
    }
    case InstrKind::kICall: {
      if (icall_target_in_t2_) {
        icall_target_in_t2_ = false;
      } else {
        LoadSlot("t2", instr.src1);
      }
      for (std::size_t i = 0; i < instr.args.size(); ++i) {
        Line(StrFormat("ld a%zu, %lld(sp)", i,
                       static_cast<long long>(SlotOffset(instr.args[i]))));
      }
      Line("jalr ra, 0(t2)");
      if (instr.dst >= 0) StoreSlot("a0", instr.dst);
      return Status::Ok();
    }
    case InstrKind::kRet: {
      if (instr.src1 >= 0) LoadSlot("a0", instr.src1);
      const std::uint64_t frame = FrameSize();
      Line(StrFormat("ld ra, %llu(sp)",
                     static_cast<unsigned long long>(frame - 8)));
      Line(StrFormat("addi sp, sp, %llu",
                     static_cast<unsigned long long>(frame)));
      Line("ret");
      return Status::Ok();
    }
    case InstrKind::kCfiLabel:
      // Handled at function entry; ignore here.
      return Status::Ok();
  }
  return Status::Internal("unhandled instr kind");
}

Status FunctionEmitter::Emit() {
  out_ << fn_.name << ":\n";

  // The classic-CFI ID word: an instruction that is architecturally a
  // no-op (lui with rd = zero), placed at the function entry so callers
  // can validate the target by loading it.
  const auto& entry = fn_.blocks.front();
  if (!entry.instrs.empty() &&
      entry.instrs.front().kind == InstrKind::kCfiLabel) {
    Line(StrFormat("lui zero, 0x%llx",
                   static_cast<unsigned long long>(
                       entry.instrs.front().imm)));
    ++result_.cfi_id_words;
  }

  const std::uint64_t frame = FrameSize();
  if (!FitsSigned(static_cast<std::int64_t>(frame), 12)) {
    return Status::InvalidArgument("frame too large: " + fn_.name);
  }
  Line(StrFormat("addi sp, sp, -%llu",
                 static_cast<unsigned long long>(frame)));
  Line(StrFormat("sd ra, %llu(sp)",
                 static_cast<unsigned long long>(frame - 8)));
  for (unsigned i = 0; i < fn_.num_params; ++i) {
    Line(StrFormat("sd a%u, %lld(sp)", i,
                   static_cast<long long>(SlotOffset(static_cast<int>(i)))));
  }

  const std::vector<unsigned> reads = CountReads();
  for (const ir::Block& block : fn_.blocks) {
    out_ << LocalLabel(block.label) << ":\n";
    for (std::size_t i = 0; i < block.instrs.size(); ++i) {
      const Instr& instr = block.instrs[i];
      // Fusion peephole for the ICall hardening pattern (Listing 3): a
      // roload-md load whose sole consumer is the next indirect call is
      // emitted straight into t2 with no spill round-trip, so the hardened
      // call costs exactly one extra ld.ro over the baseline.
      if (instr.kind == InstrKind::kLoad && instr.has_roload_md &&
          instr.width == 8 && instr.imm == 0 &&
          i + 1 < block.instrs.size() &&
          block.instrs[i + 1].kind == InstrKind::kICall &&
          block.instrs[i + 1].src1 == instr.dst && instr.dst >= 0 &&
          reads[static_cast<std::size_t>(instr.dst)] == 1) {
        LoadSlot("t2", instr.src1);
        Line(StrFormat("%s t2, (t2), %u", RoLoadMnemonic(instr.width),
                       instr.roload_key));
        ++result_.roload_instructions;
        icall_target_in_t2_ = true;
        continue;
      }
      ROLOAD_RETURN_IF_ERROR(EmitInstr(instr));
    }
  }
  return Status::Ok();
}

std::vector<unsigned> FunctionEmitter::CountReads() const {
  std::vector<unsigned> reads(
      static_cast<std::size_t>(fn_.num_vregs > 0 ? fn_.num_vregs : 1), 0);
  auto bump = [&reads](int vreg) {
    if (vreg >= 0 && static_cast<std::size_t>(vreg) < reads.size()) {
      ++reads[static_cast<std::size_t>(vreg)];
    }
  };
  for (const ir::Block& block : fn_.blocks) {
    for (const Instr& instr : block.instrs) {
      switch (instr.kind) {
        case InstrKind::kStore:
          bump(instr.src1);
          bump(instr.src2);
          break;
        case InstrKind::kRet:
        case InstrKind::kCondBr:
        case InstrKind::kLoad:
          bump(instr.src1);
          break;
        case InstrKind::kBin:
          bump(instr.src1);
          bump(instr.src2);
          break;
        case InstrKind::kBinImm:
          bump(instr.src1);
          break;
        case InstrKind::kICall:
          bump(instr.src1);
          break;
        default:
          break;
      }
      for (int arg : instr.args) bump(arg);
    }
  }
  return reads;
}

void EmitGlobals(const ir::Module& module, std::ostringstream& out) {
  // Group read-only globals by key so each keyed group lands in its own
  // .rodata.key.<K> section (its own read-only pages).
  auto emit_global = [&out](const ir::Global& global) {
    out << "  .align 3\n" << global.name << ":\n";
    for (const ir::GlobalInit& init : global.quads) {
      if (!init.symbol.empty()) {
        out << "  .quad " << init.symbol << "\n";
      } else {
        out << "  .quad " << init.value << "\n";
      }
    }
    if (global.zero_bytes > 0) {
      out << "  .zero " << global.zero_bytes << "\n";
    }
  };

  bool any_rw = false;
  for (const ir::Global& global : module.globals) {
    if (!global.read_only) any_rw = true;
  }
  if (any_rw) {
    out << ".section .data\n";
    for (const ir::Global& global : module.globals) {
      if (!global.read_only) emit_global(global);
    }
  }

  bool any_plain_ro = false;
  for (const ir::Global& global : module.globals) {
    if (global.read_only && global.key == 0) any_plain_ro = true;
  }
  if (any_plain_ro) {
    out << ".section .rodata\n";
    for (const ir::Global& global : module.globals) {
      if (global.read_only && global.key == 0) emit_global(global);
    }
  }

  std::vector<std::uint32_t> keys;
  for (const ir::Global& global : module.globals) {
    if (global.read_only && global.key != 0) {
      bool seen = false;
      for (std::uint32_t key : keys) seen = seen || key == global.key;
      if (!seen) keys.push_back(global.key);
    }
  }
  for (std::uint32_t key : keys) {
    out << ".section .rodata.key." << key << "\n";
    for (const ir::Global& global : module.globals) {
      if (global.read_only && global.key == key) emit_global(global);
    }
  }
}

// Runtime stubs: process entry and the intrinsic calls (__rt_*) the IR may
// reference. Mirrors the crt0+libc sliver the paper's musl provides.
void EmitRuntime(std::ostringstream& out) {
  out << R"(.section .text
_start:
  call main
  li a7, 93
  ecall
__rt_exit:
  li a7, 93
  ecall
__rt_abort:
  li a0, 134
  li a7, 93
  ecall
__rt_write:
  mv a2, a1
  mv a1, a0
  li a0, 1
  li a7, 64
  ecall
  ret
__rt_brk:
  li a7, 214
  ecall
  ret
__rt_mmap:
  li a7, 222
  ecall
  ret
__rt_mprotect:
  li a7, 226
  ecall
  ret
)";
}

}  // namespace

StatusOr<CodegenResult> Generate(const ir::Module& module,
                                 const CodegenOptions& options) {
  ROLOAD_RETURN_IF_ERROR(ir::Verify(module));
  CodegenResult result;
  std::ostringstream out;
  out << "# module: " << module.name << "\n";
  EmitRuntime(out);
  out << ".section .text\n";
  for (const ir::Function& fn : module.functions) {
    FunctionEmitter emitter(module, fn, options, out, result);
    ROLOAD_RETURN_IF_ERROR(emitter.Emit());
  }
  EmitGlobals(module, out);
  result.assembly = out.str();
  return result;
}

}  // namespace roload::backend
