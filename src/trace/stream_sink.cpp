#include "trace/stream_sink.h"

#include "trace/exporters.h"

namespace roload::trace {

StatusOr<std::unique_ptr<ChromeTraceFileSink>> ChromeTraceFileSink::Open(
    const std::string& path, std::size_t flush_bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  auto sink = std::unique_ptr<ChromeTraceFileSink>(
      new ChromeTraceFileSink(std::move(out), path, flush_bytes));
  sink->buffer_ = ChromeTraceHeader();
  return sink;
}

ChromeTraceFileSink::ChromeTraceFileSink(std::ofstream out, std::string path,
                                         std::size_t flush_bytes)
    : out_(std::move(out)), path_(std::move(path)),
      flush_bytes_(flush_bytes) {}

ChromeTraceFileSink::~ChromeTraceFileSink() { Close(); }

void ChromeTraceFileSink::OnEvent(const TraceEvent& event) {
  if (closed_) return;
  AppendChromeTraceEvent(&buffer_, event);
  ++events_written_;
  if (buffer_.size() >= flush_bytes_) FlushBuffer();
}

void ChromeTraceFileSink::FlushBuffer() {
  if (!buffer_.empty()) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
  if (!out_ && status_.ok()) {
    status_ = Status::Internal("write failed: " + path_);
  }
}

Status ChromeTraceFileSink::Close() {
  if (closed_) return status_;
  closed_ = true;
  buffer_ += ChromeTraceTrailer();
  FlushBuffer();
  out_.flush();
  if (!out_ && status_.ok()) {
    status_ = Status::Internal("write failed: " + path_);
  }
  return status_;
}

}  // namespace roload::trace
