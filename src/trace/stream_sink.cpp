#include "trace/stream_sink.h"

#include "trace/exporters.h"

namespace roload::trace {

StatusOr<std::unique_ptr<ChromeTraceFileSink>> ChromeTraceFileSink::Open(
    const std::string& path, std::size_t flush_bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::InvalidArgument("cannot open for write: " + path);
  }
  auto sink = std::unique_ptr<ChromeTraceFileSink>(
      new ChromeTraceFileSink(std::move(out), path, flush_bytes));
  sink->buffer_ = ChromeTraceHeader();
  // Put header + trailer on disk right away: the file parses from the
  // first moment of its existence.
  sink->FlushBuffer();
  return sink;
}

ChromeTraceFileSink::ChromeTraceFileSink(std::ofstream out, std::string path,
                                         std::size_t flush_bytes)
    : out_(std::move(out)), path_(std::move(path)),
      flush_bytes_(flush_bytes) {}

ChromeTraceFileSink::~ChromeTraceFileSink() { Close(); }

void ChromeTraceFileSink::OnEvent(const TraceEvent& event) {
  if (closed_) return;
  AppendChromeTraceEvent(&buffer_, event);
  ++events_written_;
  if (buffer_.size() >= flush_bytes_) FlushBuffer();
}

void ChromeTraceFileSink::OnFatalSignal() {
  if (closed_) return;
  FlushBuffer();
}

void ChromeTraceFileSink::FlushBuffer() {
  // Overwrite the trailer left by the previous flush, append the pending
  // records, and re-terminate the document. Every record is longer than
  // the trailer, so the file only ever grows and the bytes between the
  // prefix and EOF are exactly one valid trailer.
  out_.seekp(static_cast<std::streamoff>(prefix_bytes_));
  if (!buffer_.empty()) {
    out_.write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    prefix_bytes_ += buffer_.size();
    buffer_.clear();
  }
  const std::string_view trailer = ChromeTraceTrailer();
  out_.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out_.flush();
  if (!out_ && status_.ok()) {
    status_ = Status::Internal("write failed: " + path_);
  }
}

Status ChromeTraceFileSink::Close() {
  if (closed_) return status_;
  closed_ = true;
  FlushBuffer();
  return status_;
}

}  // namespace roload::trace
