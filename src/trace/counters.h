// Hierarchical counter registry: the one queryable namespace for every
// statistic the simulator produces ("cpu.instret", "tlb.d.key_check",
// "kernel.fault.roload", ...). Modules do not push values into the
// registry; they register a *pointer to the cell they already maintain*
// (the fields of CpuStats, TlbStats, CacheStats, ...), so the hot paths
// keep their existing single-increment cost and the registry is free
// until somebody reads it. Counters that have no legacy home can be
// allocated inside the registry with RegisterOwned().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace roload::trace {

class CounterRegistry {
 public:
  // A dynamic counter source appends (name, value) pairs when the registry
  // is read. Sources cover counters whose *names* are only known at run
  // time — the per-key TLB check counters ("tlb.keycheck.pass.<K>") and
  // the audit layer's census totals — without forcing 1024 pre-registered
  // cells. Names produced by a source must not collide with registered
  // cells or other sources.
  using Source =
      std::function<void(std::vector<std::pair<std::string, std::uint64_t>>*)>;

  // Registers `name` as a view over `cell`. The cell must outlive the
  // registry (in practice: stats structs owned by the System's modules).
  // Registering a duplicate name is a programming error.
  void Register(std::string name, const std::uint64_t* cell);

  // Registers a counter whose storage lives in the registry itself;
  // returns the mutable cell. The pointer is stable for the registry's
  // lifetime.
  std::uint64_t* RegisterOwned(std::string name);

  // Registers a dynamic source consulted by Snapshot() and Value().
  void RegisterSource(Source source);

  // Current value of `name`; 0 for unknown counters (`found` reports
  // whether the name exists when the caller needs to distinguish).
  // Dynamic sources are consulted after the registered cells.
  std::uint64_t Value(std::string_view name, bool* found = nullptr) const;

  // All counters — registered cells plus every dynamic source's output —
  // sorted by name: the deterministic export order.
  std::vector<std::pair<std::string, std::uint64_t>> Snapshot() const;

  std::size_t size() const { return counters_.size(); }

 private:
  struct Entry {
    std::string name;
    const std::uint64_t* cell;
  };

  std::vector<Entry> counters_;
  // Deque-like stable storage for owned cells.
  std::vector<std::unique_ptr<std::uint64_t>> owned_;
  std::vector<Source> sources_;
};

}  // namespace roload::trace
