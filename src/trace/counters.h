// Hierarchical counter registry: the one queryable namespace for every
// statistic the simulator produces ("cpu.instret", "tlb.d.key_check",
// "kernel.fault.roload", ...). Modules do not push values into the
// registry; they register a *pointer to the cell they already maintain*
// (the fields of CpuStats, TlbStats, CacheStats, ...), so the hot paths
// keep their existing single-increment cost and the registry is free
// until somebody reads it. Counters that have no legacy home can be
// allocated inside the registry with RegisterOwned().
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace roload::trace {

class CounterRegistry {
 public:
  // Registers `name` as a view over `cell`. The cell must outlive the
  // registry (in practice: stats structs owned by the System's modules).
  // Registering a duplicate name is a programming error.
  void Register(std::string name, const std::uint64_t* cell);

  // Registers a counter whose storage lives in the registry itself;
  // returns the mutable cell. The pointer is stable for the registry's
  // lifetime.
  std::uint64_t* RegisterOwned(std::string name);

  // Current value of `name`; 0 for unknown counters (`found` reports
  // whether the name exists when the caller needs to distinguish).
  std::uint64_t Value(std::string_view name, bool* found = nullptr) const;

  // All counters, sorted by name — the deterministic export order.
  std::vector<std::pair<std::string, std::uint64_t>> Snapshot() const;

  std::size_t size() const { return counters_.size(); }

 private:
  struct Entry {
    std::string name;
    const std::uint64_t* cell;
  };

  std::vector<Entry> counters_;
  // Deque-like stable storage for owned cells.
  std::vector<std::unique_ptr<std::uint64_t>> owned_;
};

}  // namespace roload::trace
