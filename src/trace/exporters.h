// Machine-readable views of a Hub: a flat counters JSON, a profile JSON
// (counters + cycle buckets + hot pc ranges), a Chrome trace_event JSON
// stream loadable in Perfetto / chrome://tracing, and a human text
// summary. All outputs are deterministic for a deterministic run — the
// golden-file tests diff them byte-for-byte.
#pragma once

#include <string>

#include "support/status.h"
#include "trace/hub.h"

namespace roload::trace {

// Host-side measurements of a run, appended to the counters JSON as a
// "host" object when provided. These are facts about the host machine
// (wall-clock, simulated MIPS, execute tier), deliberately kept out of
// the CounterRegistry so counter snapshots stay bit-identical across
// execute tiers and host speeds.
struct HostRunStats {
  double wall_seconds = 0.0;
  double simulated_mips = 0.0;
  std::string exec_tier;  // "interp" | "fast" | "translated"
};

// {"schema":"roload.counters.v1","counters":{name:value,...}} with names
// in sorted order, plus "host":{...} when `host` is non-null.
std::string ExportCountersJson(const CounterRegistry& counters,
                               const HostRunStats* host = nullptr);

// Counters plus the cycle-attribution breakdown:
// {"schema":"roload.profile.v1","counters":{...},
//  "profile":{"total_cycles":N,"buckets":{...},"pc_ranges":[...]}}
// At most `max_pc_ranges` hottest ranges are listed; the tail is folded
// into one "other" entry so nothing is silently dropped.
std::string ExportProfileJson(const Hub& hub, std::size_t max_pc_ranges = 32);

// Chrome trace_event JSON object format: {"traceEvents":[...]}. Retire
// events become complete ("X") slices of their cycle; everything else is
// an instant ("i"). Timestamps are simulated cycles in the `ts` field.
std::string ExportChromeTrace(const EventBuffer& events);

// The pieces ExportChromeTrace is assembled from, shared with the
// streaming ChromeTraceFileSink so both produce byte-identical output:
// document opening + per-unit metadata records, one ",\n{...}" record per
// event, and the closing of the traceEvents array.
std::string ChromeTraceHeader();
void AppendChromeTraceEvent(std::string* out, const TraceEvent& event);
std::string_view ChromeTraceTrailer();

// Multi-line human summary (counters + bucket percentages).
std::string ExportTextSummary(const Hub& hub);

// Writes `contents` to `path` (overwrite).
Status WriteFile(const std::string& path, const std::string& contents);

}  // namespace roload::trace
