// Streaming Chrome-trace sink. The event ring retains only the newest
// `event_capacity` records, so an end-of-run ExportChromeTrace of a long
// run silently drops the beginning. A sink attached to the Hub observes
// every emitted event as it happens and writes it to disk incrementally
// (buffered, flushed every ~flush_bytes), so the on-disk trace is
// complete regardless of ring capacity.
//
// The on-disk file is valid Chrome trace_event JSON *at every flush
// boundary*, not only after Close(): each flush writes the pending
// records followed by the document trailer, then the next flush seeks
// back over the trailer before appending. A run that ends in a delivered
// SIGSEGV or a thrown simulator error therefore still leaves a parseable
// trace (the kernel's fatal-signal broadcast additionally forces a flush
// via OnFatalSignal). Output is the same Chrome trace_event JSON
// ExportChromeTrace produces — byte-identical when the ring retained
// everything — and Close() (or the destructor) finalizes it.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "support/status.h"
#include "trace/events.h"

namespace roload::trace {

class ChromeTraceFileSink : public EventSink {
 public:
  static StatusOr<std::unique_ptr<ChromeTraceFileSink>> Open(
      const std::string& path, std::size_t flush_bytes = 256 * 1024);
  ~ChromeTraceFileSink() override;

  void OnEvent(const TraceEvent& event) override;

  // Fatal-signal hook (Hub::NotifyFatalSignal): flush everything buffered
  // so the events leading up to the fault are on disk even if the process
  // never reaches Close().
  void OnFatalSignal() override;

  // Flushes and finalizes. Idempotent; events arriving after Close() are
  // discarded. Returns the first I/O error seen.
  Status Close();

  std::uint64_t events_written() const { return events_written_; }

 private:
  ChromeTraceFileSink(std::ofstream out, std::string path,
                      std::size_t flush_bytes);

  void FlushBuffer();

  std::ofstream out_;
  std::string path_;
  std::string buffer_;
  std::size_t flush_bytes_;
  // Bytes of document prefix (header + event records) on disk; the file
  // on disk is always prefix + trailer, so truncation at the current end
  // never exists mid-run and the JSON stays well-formed.
  std::uint64_t prefix_bytes_ = 0;
  std::uint64_t events_written_ = 0;
  bool closed_ = false;
  Status status_ = Status::Ok();
};

}  // namespace roload::trace
