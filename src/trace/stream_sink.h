// Streaming Chrome-trace sink. The event ring retains only the newest
// `event_capacity` records, so an end-of-run ExportChromeTrace of a long
// run silently drops the beginning. A sink attached to the Hub observes
// every emitted event as it happens and writes it to disk incrementally
// (buffered, flushed every ~flush_bytes), so the on-disk trace is
// complete regardless of ring capacity. Output is the same Chrome
// trace_event JSON ExportChromeTrace produces — byte-identical when the
// ring retained everything — and is finalized by Close() (or the
// destructor) into a well-formed document.
#pragma once

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>

#include "support/status.h"
#include "trace/events.h"

namespace roload::trace {

class ChromeTraceFileSink : public EventSink {
 public:
  static StatusOr<std::unique_ptr<ChromeTraceFileSink>> Open(
      const std::string& path, std::size_t flush_bytes = 256 * 1024);
  ~ChromeTraceFileSink() override;

  void OnEvent(const TraceEvent& event) override;

  // Writes the JSON trailer and flushes. Idempotent; events arriving
  // after Close() are discarded. Returns the first I/O error seen.
  Status Close();

  std::uint64_t events_written() const { return events_written_; }

 private:
  ChromeTraceFileSink(std::ofstream out, std::string path,
                      std::size_t flush_bytes);

  void FlushBuffer();

  std::ofstream out_;
  std::string path_;
  std::string buffer_;
  std::size_t flush_bytes_;
  std::uint64_t events_written_ = 0;
  bool closed_ = false;
  Status status_ = Status::Ok();
};

}  // namespace roload::trace
