#include "trace/merge.h"

#include <algorithm>
#include <map>

namespace roload::trace {

void CounterMerger::Add(
    std::string run,
    const std::vector<std::pair<std::string, std::uint64_t>>& snapshot) {
  const std::size_t run_index = run_labels_.size();
  run_labels_.push_back(std::move(run));
  cells_.reserve(cells_.size() + snapshot.size());
  for (const auto& [name, value] : snapshot) {
    cells_.push_back(Cell{name, run_index, value});
  }
}

std::vector<std::pair<std::string, CounterMerger::Aggregate>>
CounterMerger::Merged() const {
  std::map<std::string, Aggregate> merged;
  for (const Cell& cell : cells_) {
    auto [it, inserted] = merged.try_emplace(cell.counter);
    Aggregate& agg = it->second;
    if (inserted) {
      agg.min = cell.value;
      agg.max = cell.value;
    } else {
      agg.min = std::min(agg.min, cell.value);
      agg.max = std::max(agg.max, cell.value);
    }
    agg.sum += cell.value;
    ++agg.runs;
  }
  return {merged.begin(), merged.end()};
}

std::vector<std::pair<std::string, std::uint64_t>> CounterMerger::PerRun(
    std::string_view counter) const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  for (const Cell& cell : cells_) {
    if (cell.counter == counter) {
      out.emplace_back(run_labels_[cell.run_index], cell.value);
    }
  }
  return out;
}

}  // namespace roload::trace
