// TelemetrySession: the experiment-facing wrapper that turns a run (or a
// whole bench campaign) into one machine-readable JSON document. Benches
// record scalar results (overhead percentages, key counters) in insertion
// order; a live Hub can be attached so its counters and profile ride
// along. The bench binaries write these as BENCH_<name>.json next to
// their text output — the perf-trajectory files future PRs diff against.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "support/status.h"
#include "trace/hub.h"
#include "trace/merge.h"

namespace roload::trace {

class TelemetrySession {
 public:
  explicit TelemetrySession(std::string name) : name_(std::move(name)) {}

  // Optional: export this hub's counters (and profile when enabled)
  // alongside the recorded results. The hub must outlive WriteJson/ToJson.
  void set_hub(const Hub* hub) { hub_ = hub; }

  // Optional: export a campaign's cross-run counter aggregation as a
  // "merged_counters" object ({name: {sum,min,max,runs}}). The merger
  // must outlive WriteJson/ToJson.
  void set_merger(const CounterMerger* merger) { merger_ = merger; }

  // Document schema tag; defaults to the single-bench "roload.bench.v1",
  // campaigns switch to "roload.campaign.v1".
  void set_schema(std::string schema) { schema_ = std::move(schema); }

  // Records a scalar under `key` ("omnetpp_like.vcall_time_pct", ...).
  // Re-recording a key overwrites its value but keeps its position.
  void Record(std::string_view key, double value);
  void Record(std::string_view key, std::uint64_t value);
  void Record(std::string_view key, std::string_view value);

  // {"schema":"roload.bench.v1","name":...,"results":{...}[,counters][,profile]}
  std::string ToJson() const;
  Status WriteJson(const std::string& path) const;

  const std::string& name() const { return name_; }

 private:
  using Scalar = std::variant<double, std::uint64_t, std::string>;

  std::string name_;
  std::string schema_ = "roload.bench.v1";
  const Hub* hub_ = nullptr;
  const CounterMerger* merger_ = nullptr;
  std::vector<std::pair<std::string, Scalar>> results_;
};

}  // namespace roload::trace
