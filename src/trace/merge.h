// Cross-run counter aggregation. The counter registry is per-System; a
// campaign runs many Systems (workload × defense × variant grids) and
// wants one merged report instead of N disjoint snapshots. CounterMerger
// collects the end-of-run Snapshot() of every run and aggregates each
// counter name across runs (sum / min / max / reporting-run count) while
// keeping the per-run values addressable, which is what the campaign JSON
// (`roload.campaign.v1`) and the rcampaign table printer consume.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace roload::trace {

class CounterMerger {
 public:
  // Adds one run's counter snapshot under `run` (a unique label, e.g.
  // "omnetpp_like/VCall/full"). Snapshots may carry different counter
  // sets; aggregation is per counter name across the runs that report it.
  void Add(std::string run,
           const std::vector<std::pair<std::string, std::uint64_t>>&
               snapshot);

  struct Aggregate {
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t runs = 0;  // how many runs reported this counter
  };

  std::size_t runs() const { return run_labels_.size(); }
  const std::vector<std::string>& run_labels() const { return run_labels_; }

  // All aggregated counters, sorted by name — the deterministic export
  // order, mirroring CounterRegistry::Snapshot().
  std::vector<std::pair<std::string, Aggregate>> Merged() const;

  // Value of `counter` in every run that reported it, in Add() order.
  std::vector<std::pair<std::string, std::uint64_t>> PerRun(
      std::string_view counter) const;

 private:
  struct Cell {
    std::string counter;
    std::size_t run_index;  // into run_labels_
    std::uint64_t value;
  };

  std::vector<std::string> run_labels_;
  std::vector<Cell> cells_;
};

}  // namespace roload::trace
