// Structured event tracing: a fixed-capacity ring buffer of small typed
// records emitted by the CPU, TLBs, caches and kernel. Categories are
// individually maskable so a run can record, say, only ROLoad faults and
// context switches at full speed while instruction-retire tracing (the
// expensive one) stays off.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace roload::trace {

// One bit per category in TraceConfig::categories.
enum class EventCategory : std::uint8_t {
  kInstruction,  // per-retire records (high volume)
  kTlb,          // fills, evictions, flushes
  kCache,        // misses, writebacks
  kRoLoad,       // key-check failures (the paper's attack-detected signal)
  kTrap,         // trap entry / fatal signal delivery
  kKernel,       // syscalls, context switches
  kNumCategories,
};

constexpr std::uint32_t CategoryBit(EventCategory category) {
  return 1u << static_cast<unsigned>(category);
}
inline constexpr std::uint32_t kAllCategories =
    (1u << static_cast<unsigned>(EventCategory::kNumCategories)) - 1;

std::string_view EventCategoryName(EventCategory category);

enum class EventType : std::uint8_t {
  kRetire,
  kTlbFill,
  kTlbEvict,
  kTlbFlush,
  kCacheMiss,
  kCacheWriteback,
  kRoLoadFault,
  // One per executed ld.ro/lw.ro/c.ld.ro translation, pass or fail: pc is
  // the dispatch site, addr the virtual target, and arg packs the check
  // outcome in bits [31:16] (audit::CheckOutcome) over the static key in
  // bits [15:0] — the audit layer's dispatch-census feed.
  kRoLoadCheck,
  kTrapEnter,
  kSyscall,
  kContextSwitch,
  // Remote TLB flush delivered to another hart after a PTE/key change
  // (the SMP shootdown protocol): pc is the initiating hart's pc, addr 0,
  // arg packs target_hart<<16 | initiating_hart.
  kTlbShootdown,
};

std::string_view EventTypeName(EventType type);

// Which hardware/software unit emitted the event (the exporter's "thread").
enum class Unit : std::uint8_t {
  kCpu,
  kITlb,
  kDTlb,
  kICache,
  kDCache,
  kKernel,
  kL2Cache,  // the SMP machine's shared second-level cache
};

std::string_view UnitName(Unit unit);

struct TraceEvent {
  std::uint64_t cycle = 0;  // simulated-cycle timestamp
  std::uint64_t pc = 0;     // guest pc at emission (0 when not applicable)
  std::uint64_t addr = 0;   // subject address (virt or phys per type)
  std::uint64_t arg = 0;    // type-specific payload (opcode, key, cause, pid)
  EventType type = EventType::kRetire;
  EventCategory category = EventCategory::kInstruction;
  Unit unit = Unit::kCpu;
  // Hart the event was emitted from (Hub::set_current_hart, stamped by
  // Emit). Always 0 on single-hart systems.
  std::uint8_t hart = 0;
};

// Observer of the live event stream. A sink attached to the Hub sees
// every emitted event (of the enabled categories) in emission order,
// independently of the ring's retention window — the hook the streaming
// Chrome-trace file sink (stream_sink.h) implements.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void OnEvent(const TraceEvent& event) = 0;

  // Called (via Hub::NotifyFatalSignal) when the kernel delivers a fatal
  // signal to the simulated process — the run is about to end without the
  // usual orderly teardown. Sinks holding buffered state (the streaming
  // Chrome-trace file sink) flush here so fault-ending runs still leave
  // complete artifacts on disk.
  virtual void OnFatalSignal() {}
};

// Fixed-capacity ring: when full, the oldest event is overwritten and
// counted in dropped(). Iteration yields chronological order.
class EventBuffer {
 public:
  explicit EventBuffer(std::size_t capacity);

  void Push(const TraceEvent& event);

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return events_.size(); }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t total_pushed() const { return dropped_ + size_; }

  // The i-th retained event in chronological order, 0 == oldest.
  const TraceEvent& at(std::size_t i) const;

  void Clear();

 private:
  std::vector<TraceEvent> events_;
  std::size_t head_ = 0;  // slot the next Push writes
  std::size_t size_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace roload::trace
