#include "trace/events.h"

#include "support/status.h"

namespace roload::trace {

std::string_view EventCategoryName(EventCategory category) {
  switch (category) {
    case EventCategory::kInstruction:
      return "instruction";
    case EventCategory::kTlb:
      return "tlb";
    case EventCategory::kCache:
      return "cache";
    case EventCategory::kRoLoad:
      return "roload";
    case EventCategory::kTrap:
      return "trap";
    case EventCategory::kKernel:
      return "kernel";
    case EventCategory::kNumCategories:
      break;
  }
  return "?";
}

std::string_view EventTypeName(EventType type) {
  switch (type) {
    case EventType::kRetire:
      return "retire";
    case EventType::kTlbFill:
      return "tlb_fill";
    case EventType::kTlbEvict:
      return "tlb_evict";
    case EventType::kTlbFlush:
      return "tlb_flush";
    case EventType::kCacheMiss:
      return "cache_miss";
    case EventType::kCacheWriteback:
      return "cache_writeback";
    case EventType::kRoLoadFault:
      return "roload_fault";
    case EventType::kRoLoadCheck:
      return "roload_check";
    case EventType::kTrapEnter:
      return "trap_enter";
    case EventType::kSyscall:
      return "syscall";
    case EventType::kContextSwitch:
      return "context_switch";
    case EventType::kTlbShootdown:
      return "tlb_shootdown";
  }
  return "?";
}

std::string_view UnitName(Unit unit) {
  switch (unit) {
    case Unit::kCpu:
      return "cpu";
    case Unit::kITlb:
      return "itlb";
    case Unit::kDTlb:
      return "dtlb";
    case Unit::kICache:
      return "icache";
    case Unit::kDCache:
      return "dcache";
    case Unit::kKernel:
      return "kernel";
    case Unit::kL2Cache:
      return "l2";
  }
  return "?";
}

EventBuffer::EventBuffer(std::size_t capacity) {
  ROLOAD_CHECK(capacity > 0);
  events_.resize(capacity);
}

void EventBuffer::Push(const TraceEvent& event) {
  events_[head_] = event;
  head_ = (head_ + 1) % events_.size();
  if (size_ < events_.size()) {
    ++size_;
  } else {
    ++dropped_;  // overwrote the oldest retained event
  }
}

const TraceEvent& EventBuffer::at(std::size_t i) const {
  ROLOAD_CHECK(i < size_);
  // `head_` points one past the newest; the oldest sits `size_` slots back.
  const std::size_t oldest = (head_ + events_.size() - size_) % events_.size();
  return events_[(oldest + i) % events_.size()];
}

void EventBuffer::Clear() {
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

}  // namespace roload::trace
