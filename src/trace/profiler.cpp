#include "trace/profiler.h"

#include <algorithm>

#include "support/status.h"

namespace roload::trace {

std::string_view CycleBucketName(CycleBucket bucket) {
  switch (bucket) {
    case CycleBucket::kCompute:
      return "compute";
    case CycleBucket::kRoLoadLoad:
      return "roload_load";
    case CycleBucket::kICacheMiss:
      return "icache_miss";
    case CycleBucket::kDCacheMiss:
      return "dcache_miss";
    case CycleBucket::kITlbWalk:
      return "itlb_walk";
    case CycleBucket::kDTlbWalk:
      return "dtlb_walk";
    case CycleBucket::kTrap:
      return "trap";
    case CycleBucket::kSyscall:
      return "syscall";
    case CycleBucket::kNumBuckets:
      break;
  }
  return "?";
}

CycleProfiler::CycleProfiler(unsigned pc_bucket_bits)
    : pc_bucket_bits_(pc_bucket_bits) {
  ROLOAD_CHECK(pc_bucket_bits < 64);
}

void CycleProfiler::BeginStep() { step_attributed_ = 0; }

void CycleProfiler::Charge(CycleBucket bucket, std::uint64_t cycles) {
  buckets_[static_cast<std::size_t>(bucket)] += cycles;
  step_attributed_ += cycles;
}

void CycleProfiler::EndStep(CycleBucket residual_bucket, std::uint64_t pc,
                            std::uint64_t total_cycles) {
  // The memory system can only have charged cycles the step actually spent.
  ROLOAD_CHECK(step_attributed_ <= total_cycles);
  buckets_[static_cast<std::size_t>(residual_bucket)] +=
      total_cycles - step_attributed_;
  total_cycles_ += total_cycles;
  pc_cycles_[pc >> pc_bucket_bits_] += total_cycles;
  step_attributed_ = 0;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> CycleProfiler::PcRanges()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  ranges.reserve(pc_cycles_.size());
  for (const auto& [bucket, cycles] : pc_cycles_) {
    ranges.emplace_back(bucket << pc_bucket_bits_, cycles);
  }
  std::sort(ranges.begin(), ranges.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return ranges;
}

void CycleProfiler::Reset() {
  std::fill(std::begin(buckets_), std::end(buckets_), 0);
  total_cycles_ = 0;
  step_attributed_ = 0;
  pc_cycles_.clear();
}

}  // namespace roload::trace
