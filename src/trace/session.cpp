#include "trace/session.h"

#include "support/json.h"
#include "trace/exporters.h"

namespace roload::trace {

void TelemetrySession::Record(std::string_view key, double value) {
  for (auto& [name, scalar] : results_) {
    if (name == key) {
      scalar = value;
      return;
    }
  }
  results_.emplace_back(std::string(key), value);
}

void TelemetrySession::Record(std::string_view key, std::uint64_t value) {
  for (auto& [name, scalar] : results_) {
    if (name == key) {
      scalar = value;
      return;
    }
  }
  results_.emplace_back(std::string(key), value);
}

void TelemetrySession::Record(std::string_view key, std::string_view value) {
  for (auto& [name, scalar] : results_) {
    if (name == key) {
      scalar = std::string(value);
      return;
    }
  }
  results_.emplace_back(std::string(key), std::string(value));
}

std::string TelemetrySession::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.KV("schema", schema_);
  json.KV("name", name_);
  json.Key("results").BeginObject();
  for (const auto& [key, scalar] : results_) {
    json.Key(key);
    if (const auto* d = std::get_if<double>(&scalar)) {
      json.Value(*d);
    } else if (const auto* u = std::get_if<std::uint64_t>(&scalar)) {
      json.Value(*u);
    } else {
      json.Value(std::get<std::string>(scalar));
    }
  }
  json.EndObject();
  if (hub_ != nullptr) {
    json.Key("counters").BeginObject();
    for (const auto& [name, value] : hub_->counters().Snapshot()) {
      json.KV(name, value);
    }
    json.EndObject();
  }
  if (merger_ != nullptr) {
    json.Key("merged_counters").BeginObject();
    for (const auto& [name, agg] : merger_->Merged()) {
      json.Key(name).BeginObject();
      json.KV("sum", agg.sum);
      json.KV("min", agg.min);
      json.KV("max", agg.max);
      json.KV("runs", agg.runs);
      json.EndObject();
    }
    json.EndObject();
  }
  json.EndObject();
  return json.str() + "\n";
}

Status TelemetrySession::WriteJson(const std::string& path) const {
  return WriteFile(path, ToJson());
}

}  // namespace roload::trace
