#include "trace/exporters.h"

#include <fstream>

#include "support/json.h"
#include "support/strings.h"

namespace roload::trace {
namespace {

std::string Hex(std::uint64_t value) {
  return StrFormat("0x%llx", static_cast<unsigned long long>(value));
}

void WriteCountersObject(JsonWriter* json, const CounterRegistry& counters) {
  json->Key("counters").BeginObject();
  for (const auto& [name, value] : counters.Snapshot()) {
    json->KV(name, value);
  }
  json->EndObject();
}

}  // namespace

std::string ExportCountersJson(const CounterRegistry& counters,
                               const HostRunStats* host) {
  JsonWriter json;
  json.BeginObject();
  json.KV("schema", "roload.counters.v1");
  WriteCountersObject(&json, counters);
  if (host != nullptr) {
    json.Key("host").BeginObject();
    json.KV("exec_tier", host->exec_tier);
    json.KV("wall_seconds", host->wall_seconds);
    json.KV("simulated_mips", host->simulated_mips);
    json.EndObject();
  }
  json.EndObject();
  return json.str() + "\n";
}

std::string ExportProfileJson(const Hub& hub, std::size_t max_pc_ranges) {
  const CycleProfiler& profiler = hub.profiler();
  JsonWriter json;
  json.BeginObject();
  json.KV("schema", "roload.profile.v1");
  WriteCountersObject(&json, hub.counters());

  json.Key("profile").BeginObject();
  json.KV("total_cycles", profiler.total_cycles());
  json.Key("buckets").BeginObject();
  for (unsigned b = 0;
       b < static_cast<unsigned>(CycleBucket::kNumBuckets); ++b) {
    const auto bucket = static_cast<CycleBucket>(b);
    json.KV(CycleBucketName(bucket), profiler.bucket(bucket));
  }
  json.EndObject();

  json.KV("pc_range_bytes", profiler.pc_range_bytes());
  json.Key("pc_ranges").BeginArray();
  const auto ranges = profiler.PcRanges();
  std::uint64_t other = 0;
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    if (i >= max_pc_ranges) {
      other += ranges[i].second;
      continue;
    }
    json.BeginObject();
    json.KV("base", Hex(ranges[i].first));
    json.KV("cycles", ranges[i].second);
    json.EndObject();
  }
  if (other > 0) {
    json.BeginObject();
    json.KV("base", "other");
    json.KV("cycles", other);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();  // profile

  json.EndObject();
  return json.str() + "\n";
}

std::string ChromeTraceHeader() {
  // Compact form: one event per line keeps multi-megabyte traces diffable
  // and loads in Perfetto unchanged.
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  // Metadata records naming the process and one "thread" per unit.
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"roload-sim\"}}";
  for (unsigned u = 0; u <= static_cast<unsigned>(Unit::kKernel); ++u) {
    const auto unit = static_cast<Unit>(u);
    out += StrFormat(
        ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":%u,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"%.*s\"}}",
        u, static_cast<int>(UnitName(unit).size()), UnitName(unit).data());
  }
  return out;
}

void AppendChromeTraceEvent(std::string* out, const TraceEvent& event) {
  const std::string_view name = EventTypeName(event.type);
  const std::string_view cat = EventCategoryName(event.category);
  const bool slice = event.type == EventType::kRetire;
  *out += StrFormat(
      ",\n{\"name\":\"%.*s\",\"cat\":\"%.*s\",\"ph\":\"%s\"%s,"
      "\"ts\":%llu,\"pid\":1,\"tid\":%u,\"args\":{\"pc\":\"%s\","
      "\"addr\":\"%s\",\"arg\":%llu}}",
      static_cast<int>(name.size()), name.data(),
      static_cast<int>(cat.size()), cat.data(), slice ? "X" : "i",
      slice ? ",\"dur\":1" : ",\"s\":\"t\"",
      static_cast<unsigned long long>(event.cycle),
      static_cast<unsigned>(event.unit), Hex(event.pc).c_str(),
      Hex(event.addr).c_str(),
      static_cast<unsigned long long>(event.arg));
}

std::string_view ChromeTraceTrailer() { return "\n]}\n"; }

std::string ExportChromeTrace(const EventBuffer& events) {
  std::string out = ChromeTraceHeader();
  for (std::size_t i = 0; i < events.size(); ++i) {
    AppendChromeTraceEvent(&out, events.at(i));
  }
  out += ChromeTraceTrailer();
  return out;
}

std::string ExportTextSummary(const Hub& hub) {
  std::string out = "== counters ==\n";
  for (const auto& [name, value] : hub.counters().Snapshot()) {
    out += StrFormat("%-28s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  const CycleProfiler& profiler = hub.profiler();
  if (profiler.total_cycles() > 0) {
    out += "== cycle attribution ==\n";
    for (unsigned b = 0;
         b < static_cast<unsigned>(CycleBucket::kNumBuckets); ++b) {
      const auto bucket = static_cast<CycleBucket>(b);
      const std::uint64_t cycles = profiler.bucket(bucket);
      out += StrFormat(
          "%-28s %llu (%.2f%%)\n",
          std::string(CycleBucketName(bucket)).c_str(),
          static_cast<unsigned long long>(cycles),
          100.0 * static_cast<double>(cycles) /
              static_cast<double>(profiler.total_cycles()));
    }
  }
  const EventBuffer& events = hub.events();
  if (events.total_pushed() > 0) {
    out += StrFormat("== events == %llu recorded, %llu dropped\n",
                     static_cast<unsigned long long>(events.size()),
                     static_cast<unsigned long long>(events.dropped()));
  }
  return out;
}

Status WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::InvalidArgument("cannot open for write: " + path);
  out.write(contents.data(),
            static_cast<std::streamsize>(contents.size()));
  if (!out) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

}  // namespace roload::trace
