#include "trace/counters.h"

#include <algorithm>

#include "support/status.h"

namespace roload::trace {

void CounterRegistry::Register(std::string name, const std::uint64_t* cell) {
  ROLOAD_CHECK(cell != nullptr);
  for (const Entry& entry : counters_) {
    ROLOAD_CHECK(entry.name != name);  // duplicate counter registration
  }
  counters_.push_back(Entry{std::move(name), cell});
}

std::uint64_t* CounterRegistry::RegisterOwned(std::string name) {
  owned_.push_back(std::make_unique<std::uint64_t>(0));
  std::uint64_t* cell = owned_.back().get();
  Register(std::move(name), cell);
  return cell;
}

void CounterRegistry::RegisterSource(Source source) {
  ROLOAD_CHECK(source != nullptr);
  sources_.push_back(std::move(source));
}

std::uint64_t CounterRegistry::Value(std::string_view name,
                                     bool* found) const {
  for (const Entry& entry : counters_) {
    if (entry.name == name) {
      if (found != nullptr) *found = true;
      return *entry.cell;
    }
  }
  if (!sources_.empty()) {
    std::vector<std::pair<std::string, std::uint64_t>> dynamic;
    for (const Source& source : sources_) source(&dynamic);
    for (const auto& [dyn_name, value] : dynamic) {
      if (dyn_name == name) {
        if (found != nullptr) *found = true;
        return value;
      }
    }
  }
  if (found != nullptr) *found = false;
  return 0;
}

std::vector<std::pair<std::string, std::uint64_t>> CounterRegistry::Snapshot()
    const {
  std::vector<std::pair<std::string, std::uint64_t>> snapshot;
  snapshot.reserve(counters_.size());
  for (const Entry& entry : counters_) {
    snapshot.emplace_back(entry.name, *entry.cell);
  }
  for (const Source& source : sources_) source(&snapshot);
  std::sort(snapshot.begin(), snapshot.end());
  return snapshot;
}

}  // namespace roload::trace
