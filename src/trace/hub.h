// The telemetry hub: one per System, holding the counter registry, the
// event ring and the cycle profiler. Modules keep a `Hub*` (null or with
// everything masked off in normal runs) and guard every emission with the
// inline enabled()/profiling() checks, so a disabled hub costs a pointer
// test and nothing else — it never touches architectural state or the
// cycle accounting, which is what the bit-identical differential test in
// tests/test_trace.cpp pins down.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "trace/counters.h"
#include "trace/events.h"
#include "trace/profiler.h"

namespace roload::trace {

struct TraceConfig {
  // Bitmask of EventCategory bits to record (see CategoryBit); 0 disables
  // event tracing entirely.
  std::uint32_t categories = 0;
  std::size_t event_capacity = 1 << 16;
  bool profile = false;
  unsigned pc_bucket_bits = 12;  // 4 KiB pc-attribution ranges
  // Security forensics (src/audit): attach an Auditor to the system that
  // builds the per-site ld.ro dispatch census and captures a fault autopsy
  // when the kernel delivers a fatal signal. Implies the kRoLoad event
  // category. Observation-only, like everything else here.
  bool audit = false;
};

class Hub {
 public:
  explicit Hub(const TraceConfig& config = {});

  bool enabled(EventCategory category) const {
    return (config_.categories & CategoryBit(category)) != 0;
  }
  bool profiling() const { return config_.profile; }

  // Timestamp source: the CPU's cycle counter. Set once by the System.
  // SMP machines re-point it at the running hart's counter on every
  // scheduler turn (alongside set_current_hart).
  void set_clock(const std::uint64_t* cycles) { clock_ = cycles; }
  std::uint64_t now() const { return clock_ != nullptr ? *clock_ : 0; }

  // Hart id stamped into every emitted event. The SMP scheduler updates
  // it before each hart's quantum; single-hart systems never touch it.
  void set_current_hart(unsigned hart) {
    current_hart_ = static_cast<std::uint8_t>(hart);
  }
  unsigned current_hart() const { return current_hart_; }

  // Records an event stamped with now(). Callers must check enabled()
  // first (the emission sites are hot paths; Emit assumes the check).
  void Emit(Unit unit, EventCategory category, EventType type,
            std::uint64_t pc, std::uint64_t addr, std::uint64_t arg);

  // Optional streaming observers: every Emit is also forwarded to each
  // attached sink in attachment order, letting long runs persist the full
  // event stream instead of the ring's newest-events window (and letting
  // the audit layer observe alongside a file sink). Sinks must outlive
  // the Hub or be removed first. Adding a sink twice or removing one that
  // is not attached is a no-op.
  void AddSink(EventSink* sink);
  void RemoveSink(EventSink* sink);

  // Fatal-signal broadcast: the kernel calls this when it delivers a
  // fatal signal to the simulated process, giving every sink a chance to
  // flush buffered state (EventSink::OnFatalSignal) before the run
  // unwinds.
  void NotifyFatalSignal();

  CounterRegistry& counters() { return counters_; }
  const CounterRegistry& counters() const { return counters_; }
  EventBuffer& events() { return events_; }
  const EventBuffer& events() const { return events_; }
  CycleProfiler& profiler() { return profiler_; }
  const CycleProfiler& profiler() const { return profiler_; }

  const TraceConfig& config() const { return config_; }

 private:
  TraceConfig config_;
  const std::uint64_t* clock_ = nullptr;
  std::uint8_t current_hart_ = 0;
  CounterRegistry counters_;
  EventBuffer events_;
  CycleProfiler profiler_;
  std::vector<EventSink*> sinks_;
};

}  // namespace roload::trace
