// Cycle-attribution profiler: buckets every simulated cycle by *cause*
// (compute, cache misses, TLB walks, the ROLoad-load path, traps,
// syscalls) and by guest-pc range, so overhead totals like Fig 3/4 can be
// decomposed. Attribution is exact: within one CPU step the memory-system
// components are charged as they occur and EndStep() assigns the residual
// to the step's own bucket, so the bucket sum always equals cpu.cycles.
#pragma once

#include <cstdint>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace roload::trace {

enum class CycleBucket : std::uint8_t {
  kCompute,      // base execution cycles of ordinary instructions
  kRoLoadLoad,   // base execution cycles of ld.ro-family instructions
  kICacheMiss,   // icache fill beyond the hit latency
  kDCacheMiss,   // dcache fill beyond the hit latency
  kITlbWalk,     // instruction-side page-table walks
  kDTlbWalk,     // data-side page-table walks
  kTrap,         // cycles of steps that ended in a trap
  kSyscall,      // cycles of ecall steps
  kNumBuckets,
};

std::string_view CycleBucketName(CycleBucket bucket);

class CycleProfiler {
 public:
  // pc_bucket_bits: granularity of the by-pc histogram (12 == 4 KiB pages).
  explicit CycleProfiler(unsigned pc_bucket_bits = 12);

  // Per-step protocol (driven by Cpu::Step): BeginStep, zero or more
  // Charge() calls for memory-system components, then EndStep with the
  // step's total cycles — the unattributed remainder lands in
  // `residual_bucket` and the whole step is credited to `pc`'s range.
  void BeginStep();
  void Charge(CycleBucket bucket, std::uint64_t cycles);
  void EndStep(CycleBucket residual_bucket, std::uint64_t pc,
               std::uint64_t total_cycles);

  std::uint64_t bucket(CycleBucket bucket) const {
    return buckets_[static_cast<std::size_t>(bucket)];
  }
  std::uint64_t total_cycles() const { return total_cycles_; }

  // (range base address, cycles) sorted by descending cycles then address;
  // the deterministic export order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> PcRanges() const;
  std::uint64_t pc_range_bytes() const { return 1ull << pc_bucket_bits_; }

  void Reset();

 private:
  unsigned pc_bucket_bits_;
  std::uint64_t buckets_[static_cast<std::size_t>(CycleBucket::kNumBuckets)] =
      {};
  std::uint64_t total_cycles_ = 0;
  std::uint64_t step_attributed_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> pc_cycles_;
};

}  // namespace roload::trace
