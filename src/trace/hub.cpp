#include "trace/hub.h"

namespace roload::trace {

Hub::Hub(const TraceConfig& config)
    : config_(config),
      events_(config.event_capacity),
      profiler_(config.pc_bucket_bits) {}

void Hub::Emit(Unit unit, EventCategory category, EventType type,
               std::uint64_t pc, std::uint64_t addr, std::uint64_t arg) {
  TraceEvent event;
  event.cycle = now();
  event.pc = pc;
  event.addr = addr;
  event.arg = arg;
  event.type = type;
  event.category = category;
  event.unit = unit;
  events_.Push(event);
  if (sink_ != nullptr) sink_->OnEvent(event);
}

}  // namespace roload::trace
