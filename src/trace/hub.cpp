#include "trace/hub.h"

#include <algorithm>

namespace roload::trace {

Hub::Hub(const TraceConfig& config)
    : config_(config),
      events_(config.event_capacity),
      profiler_(config.pc_bucket_bits) {}

void Hub::Emit(Unit unit, EventCategory category, EventType type,
               std::uint64_t pc, std::uint64_t addr, std::uint64_t arg) {
  TraceEvent event;
  event.cycle = now();
  event.pc = pc;
  event.addr = addr;
  event.arg = arg;
  event.type = type;
  event.category = category;
  event.unit = unit;
  event.hart = current_hart_;
  events_.Push(event);
  for (EventSink* sink : sinks_) sink->OnEvent(event);
}

void Hub::AddSink(EventSink* sink) {
  if (sink == nullptr) return;
  if (std::find(sinks_.begin(), sinks_.end(), sink) != sinks_.end()) return;
  sinks_.push_back(sink);
}

void Hub::RemoveSink(EventSink* sink) {
  sinks_.erase(std::remove(sinks_.begin(), sinks_.end(), sink),
               sinks_.end());
}

void Hub::NotifyFatalSignal() {
  for (EventSink* sink : sinks_) sink->OnFatalSignal();
}

}  // namespace roload::trace
